package policy

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

const protectionDoc = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="protect">
  <ProtectionPolicy name="retailer-guard" subject="vep:Retailer">
    <Admission maxInFlight="8" maxQueue="16" queueTimeout="250ms"/>
    <CircuitBreaker failureThreshold="3" cooldown="15s"/>
    <Hedge afterFactor="1.5" minSamples="20" minDelay="5ms" maxHedges="2"/>
  </ProtectionPolicy>
</PolicyDocument>`

func TestParseProtectionPolicy(t *testing.T) {
	doc, err := ParseString(protectionDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Protection) != 1 {
		t.Fatalf("protection policies = %d", len(doc.Protection))
	}
	pp := doc.Protection[0]
	if pp.Name != "retailer-guard" || pp.Subject != "vep:Retailer" {
		t.Fatalf("pp = %+v", pp)
	}
	wantAdm := &AdmissionSpec{MaxInFlight: 8, MaxQueue: 16, QueueTimeout: 250 * time.Millisecond}
	if !reflect.DeepEqual(pp.Admission, wantAdm) {
		t.Fatalf("admission = %+v, want %+v", pp.Admission, wantAdm)
	}
	wantBrk := &BreakerSpec{FailureThreshold: 3, Cooldown: 15 * time.Second}
	if !reflect.DeepEqual(pp.Breaker, wantBrk) {
		t.Fatalf("breaker = %+v, want %+v", pp.Breaker, wantBrk)
	}
	wantHedge := &HedgeSpec{AfterFactor: 1.5, MinSamples: 20, MinDelay: 5 * time.Millisecond, MaxHedges: 2}
	if !reflect.DeepEqual(pp.Hedge, wantHedge) {
		t.Fatalf("hedge = %+v, want %+v", pp.Hedge, wantHedge)
	}
}

func TestParseProtectionHedgeDefaults(t *testing.T) {
	doc, err := ParseString(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="d">
  <ProtectionPolicy name="p"><Hedge/></ProtectionPolicy>
</PolicyDocument>`)
	if err != nil {
		t.Fatal(err)
	}
	h := doc.Protection[0].Hedge
	want := &HedgeSpec{AfterFactor: 1, MinSamples: 10, MaxHedges: 1}
	if !reflect.DeepEqual(h, want) {
		t.Fatalf("hedge defaults = %+v, want %+v", h, want)
	}
}

func TestParseProtectionErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"no name", `<ProtectionPolicy><Admission maxInFlight="1"/></ProtectionPolicy>`},
		{"empty", `<ProtectionPolicy name="p"/>`},
		{"admission without limit", `<ProtectionPolicy name="p"><Admission maxQueue="4"/></ProtectionPolicy>`},
		{"breaker without threshold", `<ProtectionPolicy name="p"><CircuitBreaker cooldown="5s"/></ProtectionPolicy>`},
		{"breaker without cooldown", `<ProtectionPolicy name="p"><CircuitBreaker failureThreshold="2"/></ProtectionPolicy>`},
		{"hedge zero factor", `<ProtectionPolicy name="p"><Hedge afterFactor="0"/></ProtectionPolicy>`},
		{"hedge zero max", `<ProtectionPolicy name="p"><Hedge maxHedges="0"/></ProtectionPolicy>`},
		{"unknown child", `<ProtectionPolicy name="p"><Bulkhead size="4"/></ProtectionPolicy>`},
		{"bad duration", `<ProtectionPolicy name="p"><Admission maxInFlight="1" queueTimeout="fast"/></ProtectionPolicy>`},
	}
	for _, tc := range cases {
		xml := `<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="d">` + tc.body + `</PolicyDocument>`
		if _, err := ParseString(xml); !errors.Is(err, ErrParse) {
			t.Errorf("%s: err = %v, want ErrParse", tc.name, err)
		}
	}
}

func TestProtectionRoundTrip(t *testing.T) {
	doc, err := ParseString(protectionDoc)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(encoded)
	if err != nil {
		t.Fatalf("re-parse of %s: %v", encoded, err)
	}
	if !reflect.DeepEqual(doc.Protection, back.Protection) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", doc.Protection[0], back.Protection[0])
	}
}

func TestValidateDuplicateNameAcrossClasses(t *testing.T) {
	doc, err := ParseString(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="d">
  <AdaptationPolicy name="same" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
  <ProtectionPolicy name="same"><Admission maxInFlight="1"/></ProtectionPolicy>
</PolicyDocument>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(doc); err == nil || !strings.Contains(err.Error(), "same") {
		t.Fatalf("err = %v, want duplicate-name rejection", err)
	}
}

func TestRepositoryProtectionFor(t *testing.T) {
	r := NewRepository()
	if _, err := r.LoadXML(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="b-doc">
  <ProtectionPolicy name="wildcard"><Admission maxInFlight="100"/></ProtectionPolicy>
</PolicyDocument>`); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadXML(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="a-doc">
  <ProtectionPolicy name="retailer" subject="vep:Retailer"><Admission maxInFlight="4"/></ProtectionPolicy>
</PolicyDocument>`); err != nil {
		t.Fatal(err)
	}
	if n := r.ProtectionCount(); n != 2 {
		t.Fatalf("ProtectionCount = %d", n)
	}
	// Documents are consulted in name order: a-doc's subject-scoped
	// policy wins for the retailer, the wildcard covers everyone else.
	if pp := r.ProtectionFor("vep:Retailer"); pp == nil || pp.Name != "retailer" {
		t.Fatalf("ProtectionFor(vep:Retailer) = %+v", pp)
	}
	if pp := r.ProtectionFor("vep:Warehouse"); pp == nil || pp.Name != "wildcard" {
		t.Fatalf("ProtectionFor(vep:Warehouse) = %+v", pp)
	}
}
