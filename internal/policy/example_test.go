package policy_test

import (
	"fmt"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
)

// ExampleParseString shows loading a WS-Policy4MASC document and
// inspecting the parsed policies.
func ExampleParseString() {
	doc, err := policy.ParseString(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="example">
  <AdaptationPolicy name="retry-then-failover" subject="vep:Retailer" priority="10">
    <OnEvent type="fault.detected" faultType="TimeoutFault"/>
    <Actions>
      <Retry maxAttempts="3" delay="2s"/>
      <Substitute selection="bestResponseTime"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	p := doc.Adaptation[0]
	fmt.Printf("%s: on %s(%s), %d actions, priority %d\n",
		p.Name, p.Trigger.EventType, p.Trigger.FaultType, len(p.Actions), p.Priority)
	// Output:
	// retry-then-failover: on fault.detected(TimeoutFault), 2 actions, priority 10
}

// ExampleRepository shows priority-ordered policy lookup per event.
func ExampleRepository() {
	repo := policy.NewRepository()
	_, err := repo.LoadXML(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="d">
  <AdaptationPolicy name="low" subject="vep:S" priority="1">
    <OnEvent type="fault.detected"/><Actions><Skip/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="high" subject="vep:S" priority="9">
    <OnEvent type="fault.detected"/><Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	for _, p := range repo.AdaptationFor(event.Event{Type: event.TypeFaultDetected}, "vep:S") {
		fmt.Println(p.Name)
	}
	// Output:
	// high
	// low
}
