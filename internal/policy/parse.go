package policy

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/xmltree"
	"github.com/masc-project/masc/internal/xpath"
)

// ErrParse wraps all document parsing failures.
var ErrParse = errors.New("policy: parse error")

// Parse reads a WS-Policy4MASC XML document.
//
// Durations use Go syntax ("2s", "150ms") rather than XML Schema
// ISO-8601 durations — a documented simplification (DESIGN.md §2).
func Parse(r io.Reader) (*Document, error) {
	root, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrParse, err)
	}
	return FromXML(root)
}

// ParseString parses a document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// MustParseString parses or panics; for embedded static policies.
func MustParseString(s string) *Document {
	d, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FromXML converts a parsed XML tree into a Document.
func FromXML(root *xmltree.Element) (*Document, error) {
	if root.Name.Local != "PolicyDocument" || (root.Name.Space != Namespace && root.Name.Space != "") {
		return nil, fmt.Errorf("%w: root element is %s, want {%s}PolicyDocument", ErrParse, root.Name, Namespace)
	}
	doc := &Document{Name: root.AttrValue("", "name")}
	if doc.Name == "" {
		return nil, fmt.Errorf("%w: PolicyDocument lacks name attribute", ErrParse)
	}
	for _, child := range root.Children {
		switch child.Name.Local {
		case "MonitoringPolicy":
			mp, err := parseMonitoring(child)
			if err != nil {
				return nil, fmt.Errorf("%w: document %q: %v", ErrParse, doc.Name, err)
			}
			doc.Monitoring = append(doc.Monitoring, mp)
		case "AdaptationPolicy":
			ap, err := parseAdaptation(child)
			if err != nil {
				return nil, fmt.Errorf("%w: document %q: %v", ErrParse, doc.Name, err)
			}
			doc.Adaptation = append(doc.Adaptation, ap)
		case "ProtectionPolicy":
			pp, err := parseProtection(child)
			if err != nil {
				return nil, fmt.Errorf("%w: document %q: %v", ErrParse, doc.Name, err)
			}
			doc.Protection = append(doc.Protection, pp)
		default:
			return nil, fmt.Errorf("%w: document %q: unknown element %q", ErrParse, doc.Name, child.Name.Local)
		}
	}
	return doc, nil
}

func parseScope(e *xmltree.Element) Scope {
	return Scope{
		Subject:   e.AttrValue("", "subject"),
		Operation: e.AttrValue("", "operation"),
	}
}

func parseMonitoring(e *xmltree.Element) (*MonitoringPolicy, error) {
	mp := &MonitoringPolicy{
		Name:  e.AttrValue("", "name"),
		Scope: parseScope(e),
	}
	if mp.Name == "" {
		return nil, errors.New("MonitoringPolicy lacks name attribute")
	}
	var err error
	if mp.ValidateContract, err = parseBoolAttr(e, "validateContract", false); err != nil {
		return nil, fmt.Errorf("policy %q: %v", mp.Name, err)
	}
	for _, child := range e.Children {
		switch child.Name.Local {
		case "PreCondition", "PostCondition":
			a, err := parseAssertion(child)
			if err != nil {
				return nil, fmt.Errorf("policy %q: %v", mp.Name, err)
			}
			if child.Name.Local == "PreCondition" {
				mp.PreConditions = append(mp.PreConditions, a)
			} else {
				mp.PostConditions = append(mp.PostConditions, a)
			}
		case "QoSThreshold":
			th, err := parseThreshold(child)
			if err != nil {
				return nil, fmt.Errorf("policy %q: %v", mp.Name, err)
			}
			mp.Thresholds = append(mp.Thresholds, th)
		default:
			return nil, fmt.Errorf("policy %q: unknown element %q", mp.Name, child.Name.Local)
		}
	}
	return mp, nil
}

func parseAssertion(e *xmltree.Element) (*Assertion, error) {
	src := strings.TrimSpace(e.Text)
	if src == "" {
		return nil, fmt.Errorf("%s %q has empty expression", e.Name.Local, e.AttrValue("", "name"))
	}
	expr, err := xpath.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("%s %q: %v", e.Name.Local, e.AttrValue("", "name"), err)
	}
	ft := e.AttrValue("", "faultType")
	if ft == "" {
		ft = "ServiceFailureFault"
	}
	return &Assertion{
		Name:      e.AttrValue("", "name"),
		Expr:      expr,
		FaultType: ft,
	}, nil
}

func parseThreshold(e *xmltree.Element) (*QoSThreshold, error) {
	th := &QoSThreshold{
		Name:   e.AttrValue("", "name"),
		Metric: Metric(e.AttrValue("", "metric")),
	}
	switch th.Metric {
	case MetricResponseTime:
		raw := e.AttrValue("", "maxResponse")
		if raw == "" {
			return nil, fmt.Errorf("QoSThreshold %q: responseTime threshold needs maxResponse", th.Name)
		}
		d, err := time.ParseDuration(raw)
		if err != nil {
			return nil, fmt.Errorf("QoSThreshold %q: maxResponse: %v", th.Name, err)
		}
		th.MaxResponse = d
	case MetricReliability, MetricAvailability:
		raw := e.AttrValue("", "min")
		if raw == "" {
			return nil, fmt.Errorf("QoSThreshold %q: %s threshold needs min", th.Name, th.Metric)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 || v > 1 {
			return nil, fmt.Errorf("QoSThreshold %q: min must be in [0,1], got %q", th.Name, raw)
		}
		th.MinValue = v
	default:
		return nil, fmt.Errorf("QoSThreshold %q: unknown metric %q", th.Name, th.Metric)
	}
	if raw := e.AttrValue("", "minSamples"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("QoSThreshold %q: bad minSamples %q", th.Name, raw)
		}
		th.MinSamples = n
	}
	th.FaultType = e.AttrValue("", "faultType")
	if th.FaultType == "" {
		th.FaultType = "SLAViolationFault"
	}
	return th, nil
}

func parseAdaptation(e *xmltree.Element) (*AdaptationPolicy, error) {
	ap := &AdaptationPolicy{
		Name:  e.AttrValue("", "name"),
		Scope: parseScope(e),
		Kind:  AdaptationKind(e.AttrValue("", "kind")),
		Layer: Layer(e.AttrValue("", "layer")),
	}
	if ap.Name == "" {
		return nil, errors.New("AdaptationPolicy lacks name attribute")
	}
	if ap.Kind == "" {
		ap.Kind = KindCorrection
	}
	switch ap.Kind {
	case KindCustomization, KindCorrection, KindOptimization, KindPrevention:
	default:
		return nil, fmt.Errorf("policy %q: unknown kind %q", ap.Name, ap.Kind)
	}
	if raw := e.AttrValue("", "priority"); raw != "" {
		p, err := strconv.Atoi(raw)
		if err != nil {
			return nil, fmt.Errorf("policy %q: bad priority %q", ap.Name, raw)
		}
		ap.Priority = p
	}
	for _, child := range e.Children {
		switch child.Name.Local {
		case "OnEvent":
			ap.Trigger = Trigger{
				EventType: event.Type(child.AttrValue("", "type")),
				FaultType: child.AttrValue("", "faultType"),
			}
			if ap.Trigger.EventType == "" {
				return nil, fmt.Errorf("policy %q: OnEvent lacks type", ap.Name)
			}
		case "Condition":
			src := strings.TrimSpace(child.Text)
			if src == "" {
				return nil, fmt.Errorf("policy %q: empty Condition", ap.Name)
			}
			expr, err := xpath.Compile(src)
			if err != nil {
				return nil, fmt.Errorf("policy %q: Condition: %v", ap.Name, err)
			}
			ap.Condition = expr
		case "StateBefore":
			ap.StateBefore = strings.TrimSpace(child.Text)
		case "StateAfter":
			ap.StateAfter = strings.TrimSpace(child.Text)
		case "Actions":
			for _, a := range child.Children {
				act, err := parseAction(a)
				if err != nil {
					return nil, fmt.Errorf("policy %q: %v", ap.Name, err)
				}
				ap.Actions = append(ap.Actions, act)
			}
		case "BusinessValue":
			bv, err := parseBusinessValue(child)
			if err != nil {
				return nil, fmt.Errorf("policy %q: %v", ap.Name, err)
			}
			ap.BusinessValue = bv
		default:
			return nil, fmt.Errorf("policy %q: unknown element %q", ap.Name, child.Name.Local)
		}
	}
	if ap.Trigger.EventType == "" {
		return nil, fmt.Errorf("policy %q: missing OnEvent trigger", ap.Name)
	}
	if len(ap.Actions) == 0 {
		return nil, fmt.Errorf("policy %q: no actions", ap.Name)
	}
	if ap.Layer == "" {
		ap.Layer = inferLayer(ap.Actions)
	}
	switch ap.Layer {
	case LayerMessaging, LayerProcess, LayerBoth:
	default:
		return nil, fmt.Errorf("policy %q: unknown layer %q", ap.Name, ap.Layer)
	}
	return ap, nil
}

// inferLayer derives the policy layer from its actions when the
// document omits it.
func inferLayer(actions []Action) Layer {
	sawMsg, sawProc := false, false
	for _, a := range actions {
		switch a.ActionLayer() {
		case LayerMessaging:
			sawMsg = true
		case LayerProcess:
			sawProc = true
		}
	}
	switch {
	case sawMsg && sawProc:
		return LayerBoth
	case sawProc:
		return LayerProcess
	default:
		return LayerMessaging
	}
}

func parseProtection(e *xmltree.Element) (*ProtectionPolicy, error) {
	pp := &ProtectionPolicy{
		Name:  e.AttrValue("", "name"),
		Scope: parseScope(e),
	}
	if pp.Name == "" {
		return nil, errors.New("ProtectionPolicy lacks name attribute")
	}
	for _, child := range e.Children {
		switch child.Name.Local {
		case "Admission":
			a := &AdmissionSpec{}
			var err error
			if a.MaxInFlight, err = parseIntAttr(child, "maxInFlight", 0); err != nil {
				return nil, fmt.Errorf("policy %q: Admission: %v", pp.Name, err)
			}
			if a.MaxInFlight <= 0 {
				return nil, fmt.Errorf("policy %q: Admission needs maxInFlight > 0", pp.Name)
			}
			if a.MaxQueue, err = parseIntAttr(child, "maxQueue", 0); err != nil {
				return nil, fmt.Errorf("policy %q: Admission: %v", pp.Name, err)
			}
			if a.QueueTimeout, err = parseDurationAttr(child, "queueTimeout", 0); err != nil {
				return nil, fmt.Errorf("policy %q: Admission: %v", pp.Name, err)
			}
			pp.Admission = a
		case "CircuitBreaker":
			b := &BreakerSpec{}
			var err error
			if b.FailureThreshold, err = parseIntAttr(child, "failureThreshold", 0); err != nil {
				return nil, fmt.Errorf("policy %q: CircuitBreaker: %v", pp.Name, err)
			}
			if b.FailureThreshold <= 0 {
				return nil, fmt.Errorf("policy %q: CircuitBreaker needs failureThreshold > 0", pp.Name)
			}
			if b.Cooldown, err = parseDurationAttr(child, "cooldown", 0); err != nil {
				return nil, fmt.Errorf("policy %q: CircuitBreaker: %v", pp.Name, err)
			}
			if b.Cooldown <= 0 {
				return nil, fmt.Errorf("policy %q: CircuitBreaker needs cooldown > 0", pp.Name)
			}
			pp.Breaker = b
		case "Hedge":
			h := &HedgeSpec{AfterFactor: 1, MinSamples: 10, MaxHedges: 1}
			if raw := child.AttrValue("", "afterFactor"); raw != "" {
				f, err := strconv.ParseFloat(raw, 64)
				if err != nil || f <= 0 {
					return nil, fmt.Errorf("policy %q: Hedge: afterFactor must be > 0, got %q", pp.Name, raw)
				}
				h.AfterFactor = f
			}
			var err error
			if h.MinSamples, err = parseIntAttr(child, "minSamples", h.MinSamples); err != nil {
				return nil, fmt.Errorf("policy %q: Hedge: %v", pp.Name, err)
			}
			if h.MinDelay, err = parseDurationAttr(child, "minDelay", 0); err != nil {
				return nil, fmt.Errorf("policy %q: Hedge: %v", pp.Name, err)
			}
			if h.MaxHedges, err = parseIntAttr(child, "maxHedges", h.MaxHedges); err != nil {
				return nil, fmt.Errorf("policy %q: Hedge: %v", pp.Name, err)
			}
			if h.MaxHedges <= 0 {
				return nil, fmt.Errorf("policy %q: Hedge needs maxHedges > 0", pp.Name)
			}
			pp.Hedge = h
		default:
			return nil, fmt.Errorf("policy %q: unknown element %q", pp.Name, child.Name.Local)
		}
	}
	if pp.Admission == nil && pp.Breaker == nil && pp.Hedge == nil {
		return nil, fmt.Errorf("policy %q: protection policy protects nothing", pp.Name)
	}
	return pp, nil
}

// parseIntAttr reads a non-negative integer attribute with a default.
func parseIntAttr(e *xmltree.Element, name string, def int) (int, error) {
	raw := e.AttrValue("", name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s attribute %q", name, raw)
	}
	return n, nil
}

// parseDurationAttr reads a non-negative duration attribute with a
// default.
func parseDurationAttr(e *xmltree.Element, name string, def time.Duration) (time.Duration, error) {
	raw := e.AttrValue("", name)
	if raw == "" {
		return def, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad %s attribute %q", name, raw)
	}
	return d, nil
}

func parseBusinessValue(e *xmltree.Element) (*BusinessValue, error) {
	raw := e.AttrValue("", "amount")
	amount, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return nil, fmt.Errorf("BusinessValue: bad amount %q", raw)
	}
	return &BusinessValue{
		Amount:   amount,
		Currency: e.AttrValue("", "currency"),
		Reason:   e.AttrValue("", "reason"),
	}, nil
}

func parseAction(e *xmltree.Element) (Action, error) {
	switch e.Name.Local {
	case "Retry":
		a := RetryAction{MaxAttempts: 3, Backoff: BackoffFixed}
		if raw := e.AttrValue("", "maxAttempts"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("Retry: bad maxAttempts %q", raw)
			}
			a.MaxAttempts = n
		}
		if raw := e.AttrValue("", "delay"); raw != "" {
			d, err := time.ParseDuration(raw)
			if err != nil {
				return nil, fmt.Errorf("Retry: bad delay %q", raw)
			}
			a.Delay = d
		}
		if raw := e.AttrValue("", "backoff"); raw != "" {
			a.Backoff = BackoffKind(raw)
			if a.Backoff != BackoffFixed && a.Backoff != BackoffExponential {
				return nil, fmt.Errorf("Retry: unknown backoff %q", raw)
			}
		}
		return a, nil
	case "Substitute":
		a := SubstituteAction{Selection: SelectBestResponseTime}
		if raw := e.AttrValue("", "selection"); raw != "" {
			a.Selection = SelectionKind(raw)
			switch a.Selection {
			case SelectRoundRobin, SelectBestResponseTime, SelectRandom, SelectFirst:
			default:
				return nil, fmt.Errorf("Substitute: unknown selection %q", raw)
			}
		}
		if raw := e.AttrValue("", "maxAlternatives"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("Substitute: bad maxAlternatives %q", raw)
			}
			a.MaxAlternatives = n
		}
		return a, nil
	case "ConcurrentInvoke":
		a := ConcurrentAction{}
		if raw := e.AttrValue("", "maxTargets"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("ConcurrentInvoke: bad maxTargets %q", raw)
			}
			a.MaxTargets = n
		}
		return a, nil
	case "Skip":
		return SkipAction{}, nil
	case "AddActivity":
		a := AddActivityAction{
			Anchor:       e.AttrValue("", "anchor"),
			Position:     Position(e.AttrValue("", "position")),
			VariationRef: e.AttrValue("", "variationRef"),
		}
		if a.Position == "" {
			a.Position = PositionAfter
		}
		switch a.Position {
		case PositionBefore, PositionAfter, PositionAtStart, PositionAtEnd:
		default:
			return nil, fmt.Errorf("AddActivity: unknown position %q", a.Position)
		}
		if (a.Position == PositionBefore || a.Position == PositionAfter) && a.Anchor == "" {
			return nil, fmt.Errorf("AddActivity: position %q needs anchor", a.Position)
		}
		var err error
		if a.ActivitySpec, a.Bindings, err = parseSpecAndBindings(e); err != nil {
			return nil, fmt.Errorf("AddActivity: %v", err)
		}
		if a.ActivitySpec == nil && a.VariationRef == "" {
			return nil, errors.New("AddActivity: needs an inline Activity or a variationRef")
		}
		return a, nil
	case "RemoveActivity":
		a := RemoveActivityAction{
			Activity: e.AttrValue("", "activity"),
			BlockEnd: e.AttrValue("", "blockEnd"),
		}
		if a.Activity == "" {
			return nil, errors.New("RemoveActivity: needs activity")
		}
		return a, nil
	case "ReplaceActivity":
		a := ReplaceActivityAction{
			Activity:     e.AttrValue("", "activity"),
			VariationRef: e.AttrValue("", "variationRef"),
		}
		if a.Activity == "" {
			return nil, errors.New("ReplaceActivity: needs activity")
		}
		var err error
		if a.ActivitySpec, a.Bindings, err = parseSpecAndBindings(e); err != nil {
			return nil, fmt.Errorf("ReplaceActivity: %v", err)
		}
		if a.ActivitySpec == nil && a.VariationRef == "" {
			return nil, errors.New("ReplaceActivity: needs an inline Activity or a variationRef")
		}
		return a, nil
	case "SuspendProcess":
		return SuspendProcessAction{}, nil
	case "ResumeProcess":
		return ResumeProcessAction{}, nil
	case "TerminateProcess":
		return TerminateProcessAction{}, nil
	case "DelayProcess":
		raw := e.AttrValue("", "duration")
		d, err := time.ParseDuration(raw)
		if err != nil {
			return nil, fmt.Errorf("DelayProcess: bad duration %q", raw)
		}
		return DelayProcessAction{Duration: d}, nil
	case "AdjustTimeout":
		raw := e.AttrValue("", "newTimeout")
		d, err := time.ParseDuration(raw)
		if err != nil {
			return nil, fmt.Errorf("AdjustTimeout: bad newTimeout %q", raw)
		}
		return AdjustTimeoutAction{
			Activity:   e.AttrValue("", "activity"),
			NewTimeout: d,
		}, nil
	default:
		return nil, fmt.Errorf("unknown action %q", e.Name.Local)
	}
}

// parseSpecAndBindings extracts the inline <Activity> child (the first
// grandchild is the actual workflow spec) and any <Bind> children.
func parseSpecAndBindings(e *xmltree.Element) (*xmltree.Element, []DataBinding, error) {
	var spec *xmltree.Element
	var bindings []DataBinding
	for _, c := range e.Children {
		switch c.Name.Local {
		case "Activity":
			if len(c.Children) != 1 {
				return nil, nil, fmt.Errorf("Activity wrapper must contain exactly one element, has %d", len(c.Children))
			}
			spec = c.Children[0].Copy()
		case "Bind":
			b := DataBinding{
				FromVariable: c.AttrValue("", "from"),
				ToVariable:   c.AttrValue("", "to"),
				Direction:    c.AttrValue("", "direction"),
			}
			if b.Direction == "" {
				b.Direction = "in"
			}
			if b.Direction != "in" && b.Direction != "out" {
				return nil, nil, fmt.Errorf("Bind: unknown direction %q", b.Direction)
			}
			if b.FromVariable == "" || b.ToVariable == "" {
				return nil, nil, errors.New("Bind: needs from and to")
			}
			bindings = append(bindings, b)
		default:
			return nil, nil, fmt.Errorf("unknown element %q", c.Name.Local)
		}
	}
	return spec, bindings, nil
}

func parseBoolAttr(e *xmltree.Element, name string, def bool) (bool, error) {
	raw := e.AttrValue("", name)
	if raw == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("bad %s attribute %q", name, raw)
	}
	return b, nil
}
