package compile_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/policy/compile"
)

func parseDoc(t *testing.T, xml string) *policy.Document {
	t.Helper()
	doc, err := policy.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// fixtureDocs builds a document set with wildcard subjects and
// operations, priority ties broken by name, and cross-document
// interleavings — the cases where dispatch-table ordering could
// diverge from the repository's filter-then-sort interpreter.
func fixtureDocs(t *testing.T) []*policy.Document {
	t.Helper()
	return []*policy.Document{
		parseDoc(t, `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="zeta">
  <MonitoringPolicy name="z-any-subject" operation="getQuote">
    <PreCondition name="pre">count(//Symbol) &gt; 0</PreCondition>
  </MonitoringPolicy>
  <AdaptationPolicy name="z-mid" subject="vep:Trader" priority="5" kind="correction">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="2"/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="a-tie" subject="vep:Trader" priority="5" kind="correction">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
  <ProtectionPolicy name="z-wild-guard">
    <CircuitBreaker failureThreshold="9" cooldown="1s"/>
  </ProtectionPolicy>
</PolicyDocument>`),
		parseDoc(t, `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="alpha">
  <MonitoringPolicy name="a-exact" subject="vep:Trader" operation="getQuote">
    <PostCondition name="post">number(//Price) &gt; 0</PostCondition>
  </MonitoringPolicy>
  <MonitoringPolicy name="a-subject-wide" subject="vep:Trader">
    <QoSThreshold name="avail" metric="availability" min="0.99" minSamples="5"/>
  </MonitoringPolicy>
  <AdaptationPolicy name="m-high" subject="vep:Trader" priority="9" kind="correction">
    <OnEvent type="fault.detected" faultType="service.unavailable"/>
    <Actions><Substitute selection="first"/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="w-wild-trigger" priority="7" kind="correction">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
  <ProtectionPolicy name="a-exact-guard" subject="vep:Trader">
    <Admission maxInFlight="4" maxQueue="8"/>
  </ProtectionPolicy>
</PolicyDocument>`),
	}
}

func loadAll(t *testing.T, docs []*policy.Document) *policy.Repository {
	t.Helper()
	repo := policy.NewRepository()
	for _, d := range docs {
		if err := repo.Load(d); err != nil {
			t.Fatal(err)
		}
	}
	return repo
}

func monNames(mps []*compile.CompiledMonitoring) []string {
	var out []string
	for _, mp := range mps {
		out = append(out, mp.Name)
	}
	return out
}

func adaptNames(aps []*compile.CompiledAdaptation) []string {
	var out []string
	for _, ap := range aps {
		out = append(out, ap.Name)
	}
	return out
}

// TestDispatchTablesMatchRepository checks the compiled first-match
// tables against the repository interpreter over the full grid of
// subjects, operations, and trigger events: same policies, same order.
func TestDispatchTablesMatchRepository(t *testing.T) {
	docs := fixtureDocs(t)
	repo := loadAll(t, docs)
	cs, err := compile.Compile(docs)
	if err != nil {
		t.Fatal(err)
	}

	subjects := []string{"", "vep:Trader", "vep:Other"}
	operations := []string{"", "getQuote", "submitOrder"}
	for _, subject := range subjects {
		for _, op := range operations {
			want := repo.MonitoringFor(subject, op)
			got := cs.MonitoringFor(subject, op)
			if len(want) != len(got) {
				t.Fatalf("MonitoringFor(%q,%q): %d vs %d policies", subject, op, len(want), len(got))
			}
			for i := range want {
				if want[i].Name != got[i].Name {
					t.Errorf("MonitoringFor(%q,%q)[%d] = %q, interpreter %q",
						subject, op, i, got[i].Name, want[i].Name)
				}
			}

			wantP := repo.ProtectionFor(subject)
			gotP := cs.ProtectionFor(subject)
			switch {
			case (wantP == nil) != (gotP == nil):
				t.Errorf("ProtectionFor(%q): nil mismatch", subject)
			case wantP != nil && wantP.Name != gotP.Name:
				t.Errorf("ProtectionFor(%q) = %q, interpreter %q", subject, gotP.Name, wantP.Name)
			}
		}
	}

	events := []event.Event{
		{Type: event.TypeFaultDetected, FaultType: "service.unavailable"},
		{Type: event.TypeFaultDetected, FaultType: "masc:policyViolation"},
		{Type: event.TypeSLAViolation},
		{Type: event.TypeMessageIntercepted},
	}
	for _, ev := range events {
		for _, subject := range subjects {
			want := repo.AdaptationFor(ev, subject)
			got := cs.AdaptationFor(ev, subject)
			wantNames := make([]string, len(want))
			for i, ap := range want {
				wantNames[i] = ap.Name
			}
			gotNames := adaptNames(got)
			if strings.Join(wantNames, ",") != strings.Join(gotNames, ",") {
				t.Errorf("AdaptationFor(%s,%q): compiled %v, interpreter %v",
					ev.Type, subject, gotNames, wantNames)
			}
		}
	}
}

// TestManifestDeterminism: same documents, same revision and hashes —
// the revision identifies content, not the compile invocation.
func TestManifestDeterminism(t *testing.T) {
	docs := fixtureDocs(t)
	a, err := compile.Compile(docs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compile.Compile([]*policy.Document{docs[1], docs[0]}) // order-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.Revision == "" || a.Manifest.Revision != b.Manifest.Revision {
		t.Fatalf("revisions differ: %q vs %q", a.Manifest.Revision, b.Manifest.Revision)
	}
	if len(a.Manifest.Documents) != 2 || a.Manifest.Documents[0].Name != "alpha" {
		t.Fatalf("manifest not sorted by name: %+v", a.Manifest.Documents)
	}
	for _, dm := range a.Manifest.Documents {
		if len(dm.SHA256) != 64 {
			t.Errorf("document %q hash %q is not a sha256 hex digest", dm.Name, dm.SHA256)
		}
	}
	mon, adapt, prot := a.Counts()
	if mon != 3 || adapt != 4 || prot != 2 {
		t.Fatalf("Counts() = %d,%d,%d; want 3,4,2", mon, adapt, prot)
	}
	if _, err := compile.Compile([]*policy.Document{docs[0], docs[0]}); err == nil {
		t.Fatal("duplicate document names compiled without error")
	}
}

// TestEnableSwapAndRollback: a failing mutation must leave both the
// document map and the published CompiledSet exactly as they were —
// the old set keeps serving.
func TestEnableSwapAndRollback(t *testing.T) {
	repo := policy.NewRepository()
	if err := compile.Enable(repo, compile.Options{}); err != nil {
		t.Fatal(err)
	}
	docs := fixtureDocs(t)
	if err := repo.ReplaceAll(docs); err != nil {
		t.Fatal(err)
	}
	before := compile.Lookup(repo)
	if before == nil {
		t.Fatal("no compiled set published after ReplaceAll")
	}
	revBefore := repo.Revision()

	invalid := parseDoc(t, `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="broken">
  <AdaptationPolicy name="bad" kind="customization" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	if err := repo.ReplaceAll([]*policy.Document{invalid}); err == nil {
		t.Fatal("ReplaceAll accepted an invalid document")
	}
	if got := compile.Lookup(repo); got != before {
		t.Fatal("rejected ReplaceAll swapped the compiled set")
	}
	if repo.Revision() != revBefore {
		t.Fatal("rejected ReplaceAll bumped the revision")
	}
	if len(repo.Snapshot()) != 2 {
		t.Fatalf("document map changed: %d docs", len(repo.Snapshot()))
	}
	if err := repo.Load(invalid); err == nil {
		t.Fatal("Load accepted an invalid document")
	}
	if got := compile.Lookup(repo); got != before {
		t.Fatal("rejected Load swapped the compiled set")
	}

	// A valid single-document load publishes a new set atomically.
	update := parseDoc(t, `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="alpha">
  <MonitoringPolicy name="a-exact" subject="vep:Trader" operation="getQuote">
    <PostCondition name="post">number(//Price) &gt; 1</PostCondition>
  </MonitoringPolicy>
</PolicyDocument>`)
	if err := repo.Load(update); err != nil {
		t.Fatal(err)
	}
	after := compile.Lookup(repo)
	if after == before {
		t.Fatal("Load did not publish a new compiled set")
	}
	if after.Manifest.Revision == before.Manifest.Revision {
		t.Fatal("content change kept the same revision")
	}
	if repo.Revision() <= revBefore {
		t.Fatal("revision counter did not advance")
	}
	if !repo.Unload("zeta") {
		t.Fatal("Unload failed")
	}
	if ds := compile.Lookup(repo).Doc("zeta"); ds != nil {
		t.Fatal("unloaded document still in compiled set")
	}
}

// TestInterpreterFacades: with no compiler registered, the facades wrap
// the repository interpreter and evaluation still works.
func TestInterpreterFacades(t *testing.T) {
	repo := loadAll(t, fixtureDocs(t))
	if compile.Lookup(repo) != nil {
		t.Fatal("Lookup returned a set with no compiler registered")
	}
	mons := compile.MonitoringsFor(repo, "vep:Trader", "getQuote")
	if got := strings.Join(monNames(mons), ","); got != "a-exact,a-subject-wide,z-any-subject" {
		t.Fatalf("MonitoringsFor = %q", got)
	}
	aps := compile.AdaptationsFor(repo, event.Event{Type: event.TypeFaultDetected}, "vep:Trader")
	if len(aps) == 0 || aps[0].ActionsJoined == "" {
		t.Fatalf("AdaptationsFor wrappers lack joined actions: %+v", aps)
	}
	if pp := compile.ProtectionLookup(repo, "vep:Trader"); pp == nil || pp.Name != "a-exact-guard" {
		t.Fatalf("ProtectionLookup = %+v", pp)
	}
}

// TestCheckDocumentDiagnostics: validation failures are error
// diagnostics, lint findings are warnings carrying the policy name, and
// compiled sets surface them per document.
func TestCheckDocumentDiagnostics(t *testing.T) {
	bad := parseDoc(t, `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="empty-mon">
  <MonitoringPolicy name="nothing" subject="vep:X"/>
</PolicyDocument>`)
	diags := compile.CheckDocument(bad)
	if !compile.HasErrors(diags) {
		t.Fatalf("no error diagnostic for invalid document: %+v", diags)
	}

	dead := parseDoc(t, `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="dead">
  <AdaptationPolicy name="never-fires" priority="1" kind="correction">
    <OnEvent type="no.such.event"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	diags = compile.CheckDocument(dead)
	if compile.HasErrors(diags) {
		t.Fatalf("lint-only document reported errors: %+v", diags)
	}
	if len(diags) != 1 || diags[0].Severity != compile.SeverityWarning || diags[0].Policy != "never-fires" {
		t.Fatalf("diagnostics = %+v", diags)
	}

	cs, err := compile.Compile([]*policy.Document{dead})
	if err != nil {
		t.Fatal(err)
	}
	ds := cs.Doc("dead")
	if ds == nil || len(ds.Diagnostics) != 1 {
		t.Fatalf("compiled set lost the lint warning: %+v", ds)
	}
	if len(cs.Diagnostics) != 1 {
		t.Fatalf("set-level diagnostics = %+v", cs.Diagnostics)
	}
}

// TestLoadDir: the bundle loader reads *.xml transactionally.
func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b.xml", `<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="two"><ProtectionPolicy name="g"><CircuitBreaker failureThreshold="3" cooldown="1s"/></ProtectionPolicy></PolicyDocument>`)
	write("a.xml", `<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="one"><ProtectionPolicy name="h" subject="vep:X"><CircuitBreaker failureThreshold="3" cooldown="1s"/></ProtectionPolicy></PolicyDocument>`)
	write("notes.txt", "ignored")

	b, err := compile.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Docs) != 2 || b.Docs[0].Name != "one" || b.Docs[1].Name != "two" {
		t.Fatalf("bundle docs = %+v", b.Docs)
	}
	if b.Files["one"] != "a.xml" || b.Files["two"] != "b.xml" {
		t.Fatalf("file map = %v", b.Files)
	}

	write("c.xml", `<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="one"><ProtectionPolicy name="dup"><CircuitBreaker failureThreshold="3" cooldown="1s"/></ProtectionPolicy></PolicyDocument>`)
	if _, err := compile.LoadDir(dir); err == nil {
		t.Fatal("duplicate document name across files accepted")
	}
	os.Remove(filepath.Join(dir, "c.xml"))

	write("broken.xml", "<PolicyDocument")
	if _, err := compile.LoadDir(dir); err == nil {
		t.Fatal("unparseable bundle file accepted")
	}
}
