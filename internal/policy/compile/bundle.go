package compile

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/masc-project/masc/internal/policy"
)

// Bundle is a policy document set read from a directory, before
// validation and compilation.
type Bundle struct {
	// Dir is the directory the bundle was read from.
	Dir string
	// Docs are the parsed documents, in file-name order.
	Docs []*policy.Document
	// Files maps document name to the file (base name) it came from.
	Files map[string]string
}

// LoadDir reads every *.xml file in dir (sorted by name) as one bundle.
// Any file that fails to parse, or two files declaring the same
// document name, fails the whole bundle — load-from-directory is a
// transaction, like the swap that follows it. Validation is deferred to
// the repository swap (ReplaceAll) so parse and policy errors surface
// through the same diagnostic path.
func LoadDir(dir string) (*Bundle, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("compile: read bundle directory: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".xml" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	b := &Bundle{Dir: dir, Files: make(map[string]string, len(names))}
	for _, name := range names {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("compile: read bundle file %s: %w", name, err)
		}
		doc, err := policy.ParseString(string(text))
		if err != nil {
			return nil, fmt.Errorf("compile: bundle file %s: %w", name, err)
		}
		if prev, dup := b.Files[doc.Name]; dup {
			return nil, fmt.Errorf("compile: bundle files %s and %s both declare document %q", prev, name, doc.Name)
		}
		b.Docs = append(b.Docs, doc)
		b.Files[doc.Name] = name
	}
	return b, nil
}
