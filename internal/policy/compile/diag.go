// Package compile lowers validated WS-Policy4MASC documents into an
// immutable decision IR — the "object representation of policies, which
// is updated only when policies change" optimization the paper plans
// for the .NET wsBus (§3.2), taken one step further in the style of
// OPA's ast → compile → eval pipeline: XPath expressions are lowered
// once into closure programs, policies are indexed into per-subject and
// per-trigger first-match dispatch tables, QNames are interned, and
// action descriptors are pre-resolved.
//
// The compiler is registered on a policy.Repository via Enable; every
// repository mutation then recompiles the full document set before it
// is published (all-or-nothing — a set that fails to compile is never
// visible and the previous set keeps serving), and evaluation sites
// read the current CompiledSet through one atomic load (Lookup) without
// taking the repository lock.
//
// The tree-walking interpreter remains both the escape hatch
// (mascd -policy-interp) and the oracle: the differential tests in this
// package replay identical workloads through both evaluators and
// require identical decision-provenance records.
package compile

import "fmt"

// Severity grades a diagnostic.
type Severity string

// Diagnostic severities.
const (
	// SeverityError marks a finding that rejects the document (parse or
	// validation failure). A document with an error diagnostic is never
	// published.
	SeverityError Severity = "error"
	// SeverityWarning marks a suspect-but-legal construct (dead
	// trigger, shadowed policy). Warnings do not block publication.
	SeverityWarning Severity = "warning"
)

// Diagnostic is one compiler or lint finding. policylint and the
// /api/v1/policies surface share this type, so CLI warnings and API
// compile diagnostics are the same findings in the same words.
type Diagnostic struct {
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Policy names the offending policy within the document, when the
	// finding is attributable to one.
	Policy string `json:"policy,omitempty"`
	// Assertion names the offending assertion within the policy, when
	// the finding is attributable to one.
	Assertion string `json:"assertion,omitempty"`
	// Message is the human-readable finding.
	Message string `json:"message"`
}

// String renders the diagnostic as "severity: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Severity, d.Message)
}

// HasErrors reports whether any diagnostic is an error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// ErrorDiagnostic wraps an error from the parse/validate/compile
// pipeline as a structured diagnostic.
func ErrorDiagnostic(err error) Diagnostic {
	return Diagnostic{Severity: SeverityError, Message: err.Error()}
}
