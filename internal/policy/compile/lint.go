package compile

import (
	"fmt"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
)

// CheckDocument runs the compiler front-end over one parsed document:
// validation, then lint. A validation failure yields a single error
// diagnostic; a valid document yields its lint warnings (possibly
// none). policylint and the PUT /api/v1/policies handler both go
// through here, so CLI findings and API diagnostics are one code path.
func CheckDocument(doc *policy.Document) []Diagnostic {
	if err := policy.Validate(doc); err != nil {
		return []Diagnostic{ErrorDiagnostic(err)}
	}
	return Lint(doc)
}

// Lint reports warning diagnostics for suspect-but-legal constructs in
// a valid document: dead triggers and shadowed messaging policies.
func Lint(doc *policy.Document) []Diagnostic {
	var out []Diagnostic
	out = append(out, deadTriggers(doc)...)
	out = append(out, shadowedPolicies(doc)...)
	return out
}

// deadTriggers flags adaptation policies whose OnEvent type is never
// published by any middleware component: the policy is syntactically
// valid but can never fire.
func deadTriggers(doc *policy.Document) []Diagnostic {
	var out []Diagnostic
	for _, ap := range doc.Adaptation {
		if t := ap.Trigger.EventType; t != "" && !event.IsPublished(t) {
			out = append(out, Diagnostic{
				Severity: SeverityWarning,
				Policy:   ap.Name,
				Message: fmt.Sprintf(
					"adaptation policy %q triggers on %q, which no component publishes — the policy can never fire (published types: %v)",
					ap.Name, t, event.PublishedTypes()),
			})
		}
	}
	return out
}

// shadowedPolicies flags messaging-layer adaptation policies that can
// never enact because a higher-priority sibling always wins first: the
// bus's corrective recovery stops at the first policy whose gates
// hold, so a sibling with the same (or broader) scope and trigger that
// has no state-before gate and no condition matches every event the
// shadowed policy could have handled. Process-layer policies are
// exempt — the decision maker dispatches every applicable policy.
func shadowedPolicies(doc *policy.Document) []Diagnostic {
	var out []Diagnostic
	for _, ap := range doc.Adaptation {
		if ap.Layer == policy.LayerProcess {
			continue
		}
		for _, winner := range doc.Adaptation {
			if winner == ap || winner.Layer == policy.LayerProcess {
				continue
			}
			if !sortsBefore(winner, ap) || !covers(winner, ap) {
				continue
			}
			if winner.StateBefore != "" || winner.Condition != nil {
				continue
			}
			out = append(out, Diagnostic{
				Severity: SeverityWarning,
				Policy:   ap.Name,
				Message: fmt.Sprintf(
					"adaptation policy %q is shadowed by %q (priority %d >= %d): same scope and trigger, and %q has no state or condition gate, so the messaging layer's first-match recovery always picks it — %q can never enact",
					ap.Name, winner.Name, winner.Priority, ap.Priority, winner.Name, ap.Name),
			})
			break
		}
	}
	return out
}

// sortsBefore mirrors Repository.AdaptationFor's ordering: descending
// priority, ties broken by ascending name.
func sortsBefore(a, b *policy.AdaptationPolicy) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Name < b.Name
}

// covers reports whether policy a is evaluated for every event that
// would reach policy b: a's scope and trigger are equal to or broader
// than b's (an empty field matches everything, so it covers any
// narrower value).
func covers(a, b *policy.AdaptationPolicy) bool {
	if a.Scope.Subject != "" && a.Scope.Subject != b.Scope.Subject {
		return false
	}
	if a.Scope.Operation != "" && a.Scope.Operation != b.Scope.Operation {
		return false
	}
	if a.Trigger.EventType != "" && a.Trigger.EventType != b.Trigger.EventType {
		return false
	}
	if a.Trigger.FaultType != "" && a.Trigger.FaultType != b.Trigger.FaultType {
		return false
	}
	return true
}
