package compile

import (
	"time"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/xmltree"
	"github.com/masc-project/masc/internal/xpath"
)

// CompiledAssertion is one monitoring assertion with its XPath
// constraint lowered to a closure program. With a nil program (the
// interpreter facade built by MonitoringsFor when no compiled set is
// live) evaluation falls back to tree-walking the source expression.
type CompiledAssertion struct {
	// Name labels the assertion for diagnostics and decision records.
	Name string
	// FaultType is raised when the constraint evaluates false.
	FaultType string
	src       *policy.Assertion
	prog      *xpath.Program
}

// Source returns the assertion's original XPath text.
func (a *CompiledAssertion) Source() string { return a.src.Expr.Source() }

// EvalBool evaluates the assertion: the lowered program when compiled,
// the tree-walking interpreter otherwise. Both are observationally
// identical (enforced by the differential tests).
func (a *CompiledAssertion) EvalBool(root *xmltree.Element, env xpath.Context) (bool, error) {
	if a.prog != nil {
		return a.prog.EvalBool(root, env)
	}
	return a.src.Expr.EvalBool(root, env)
}

// CompiledMonitoring is one monitoring policy with every assertion
// lowered, ready for the monitor's pre/post/contract/QoS checks.
type CompiledMonitoring struct {
	// Doc names the owning document.
	Doc string
	// Name is the policy name.
	Name string
	// Scope is the policy's attachment scope.
	Scope policy.Scope
	// Pre and Post are the lowered pre-/post-condition assertions.
	Pre, Post []*CompiledAssertion
	// Thresholds are the QoS thresholds (shared with the source policy;
	// immutable by convention).
	Thresholds []*policy.QoSThreshold
	// ValidateContract requests WSDL contract validation.
	ValidateContract bool
	ord              int
}

// CompiledAdaptation is one adaptation ECA rule with its relevance
// condition lowered and its action descriptors pre-resolved. The source
// policy is embedded: dispatchers keep reading Name, Priority, Actions,
// StateBefore/After, BusinessValue and Layer exactly as before.
type CompiledAdaptation struct {
	*policy.AdaptationPolicy
	// Doc names the owning document.
	Doc string
	// ActionNames are the pre-resolved action element names, in order.
	ActionNames []string
	// ActionsJoined is the pre-joined decision-record action label
	// (decision.JoinActions of ActionNames).
	ActionsJoined string
	cond          *xpath.Program
	ord           int
}

// EvalCondition evaluates the policy's relevance condition against the
// triggering message; a nil condition is true. Uses the lowered program
// when compiled, the tree interpreter otherwise.
func (ca *CompiledAdaptation) EvalCondition(root *xmltree.Element, env xpath.Context) (bool, error) {
	if ca.Condition == nil {
		return true, nil
	}
	if ca.cond != nil {
		return ca.cond.EvalBool(root, env)
	}
	return ca.Condition.EvalBool(root, env)
}

// CompiledProtection is one protection policy entry in the first-match
// protection table.
type CompiledProtection struct {
	*policy.ProtectionPolicy
	// Doc names the owning document.
	Doc string
	ord int
}

// DocStatus is the per-document compile status exposed by the
// management API: identity, content hash, policy counts, and lint
// warnings.
type DocStatus struct {
	// Name is the document name.
	Name string `json:"name"`
	// SHA256 is the hex SHA-256 of the document's canonical XML
	// serialization (see HashDocument).
	SHA256 string `json:"sha256"`
	// Monitoring/Adaptation/Protection count the document's policies.
	Monitoring int `json:"monitoring"`
	Adaptation int `json:"adaptation"`
	Protection int `json:"protection"`
	// Diagnostics are the document's lint warnings (a published
	// document never carries errors).
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

// DocManifest identifies one document inside a bundle manifest.
type DocManifest struct {
	// Name is the document name.
	Name string `json:"name"`
	// SHA256 is the hex SHA-256 of the canonical serialization.
	SHA256 string `json:"sha256"`
}

// Manifest is the versioned identity of a compiled bundle: which
// documents at which content hashes were compiled when. Revision is
// deterministic in the document set (a truncated SHA-256 over the
// per-document hashes), so two nodes holding the same documents report
// the same revision.
type Manifest struct {
	// Revision identifies the document set.
	Revision string `json:"revision"`
	// CompiledAt is when this set was compiled.
	CompiledAt time.Time `json:"compiled_at"`
	// Documents lists the member documents, sorted by name.
	Documents []DocManifest `json:"documents"`
}

// CompiledSet is the immutable decision IR for one full document set.
// It is built once per repository mutation and published with a single
// atomic store; readers never see a partially updated set. All lookup
// methods reproduce the repository interpreter's ordering exactly:
// (document name, document order) for first-match tables, and
// (priority desc, name asc, document order) for adaptation dispatch.
type CompiledSet struct {
	// Manifest is the bundle identity of this set.
	Manifest Manifest
	// Diagnostics are the set's lint warnings across all documents.
	Diagnostics []Diagnostic

	docs map[string]*DocStatus
	// Monitoring dispatch: exact-subject buckets plus a wildcard bucket
	// (policies with an empty scope subject), each in global ordinal
	// order; lookups merge the two by ordinal.
	monBySubject map[string][]*CompiledMonitoring
	monWild      []*CompiledMonitoring
	// Protection first-match table, same bucket scheme.
	protBySubject map[string][]*CompiledProtection
	protWild      []*CompiledProtection
	// Adaptation dispatch: per-trigger-event buckets plus a wildcard
	// bucket, each pre-sorted by (priority desc, name asc, ordinal asc);
	// lookups merge the two sorted buckets.
	adaptByEvent map[event.Type][]*CompiledAdaptation
	adaptWild    []*CompiledAdaptation

	monitoring, adaptation, protection int
}

// Docs returns the per-document compile status, sorted by name.
func (s *CompiledSet) Docs() []*DocStatus {
	out := make([]*DocStatus, 0, len(s.docs))
	for _, m := range s.Manifest.Documents {
		out = append(out, s.docs[m.Name])
	}
	return out
}

// Doc returns the named document's status, or nil.
func (s *CompiledSet) Doc(name string) *DocStatus { return s.docs[name] }

// Counts returns the number of compiled monitoring, adaptation, and
// protection policies across the whole set.
func (s *CompiledSet) Counts() (monitoring, adaptation, protection int) {
	return s.monitoring, s.adaptation, s.protection
}

// MonitoringFor returns the compiled monitoring policies whose scope
// covers the subject and operation, in (document name, document order)
// — byte-for-byte the repository interpreter's order.
func (s *CompiledSet) MonitoringFor(subject, operation string) []*CompiledMonitoring {
	var exact []*CompiledMonitoring
	if subject != "" {
		exact = s.monBySubject[subject]
	}
	wild := s.monWild
	var out []*CompiledMonitoring
	i, j := 0, 0
	for i < len(exact) || j < len(wild) {
		var mp *CompiledMonitoring
		if j >= len(wild) || (i < len(exact) && exact[i].ord < wild[j].ord) {
			mp = exact[i]
			i++
		} else {
			mp = wild[j]
			j++
		}
		if mp.Scope.Matches(subject, operation) {
			out = append(out, mp)
		}
	}
	return out
}

// ProtectionFor returns the first protection policy whose scope covers
// the subject (protection policies do not stack), or nil.
func (s *CompiledSet) ProtectionFor(subject string) *policy.ProtectionPolicy {
	var exact []*CompiledProtection
	if subject != "" {
		exact = s.protBySubject[subject]
	}
	wild := s.protWild
	switch {
	case len(exact) == 0 && len(wild) == 0:
		return nil
	case len(exact) == 0:
		return wild[0].ProtectionPolicy
	case len(wild) == 0 || exact[0].ord < wild[0].ord:
		return exact[0].ProtectionPolicy
	default:
		return wild[0].ProtectionPolicy
	}
}

// adaptBefore is the adaptation dispatch order: descending priority,
// ties by ascending name, then by global ordinal — exactly the result
// of the interpreter's stable sort over (document name, document order).
func adaptBefore(a, b *CompiledAdaptation) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.ord < b.ord
}

// AdaptationFor returns the compiled adaptation policies triggered by
// the event whose scope covers the subject, ordered by descending
// priority (ties by name). Callers evaluate each policy's condition via
// EvalCondition.
func (s *CompiledSet) AdaptationFor(e event.Event, subject string) []*CompiledAdaptation {
	exact := s.adaptByEvent[e.Type]
	wild := s.adaptWild
	var out []*CompiledAdaptation
	i, j := 0, 0
	for i < len(exact) || j < len(wild) {
		var ap *CompiledAdaptation
		if j >= len(wild) || (i < len(exact) && adaptBefore(exact[i], wild[j])) {
			ap = exact[i]
			i++
		} else {
			ap = wild[j]
			j++
		}
		if !ap.Trigger.Matches(e) {
			continue
		}
		if !ap.Scope.Matches(subject, e.Operation) {
			continue
		}
		out = append(out, ap)
	}
	return out
}
