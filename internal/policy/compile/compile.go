package compile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/telemetry/decision"
)

// HashDocument returns the hex SHA-256 of the document's canonical XML
// serialization (Document.Encode). Hashing the re-serialization rather
// than the input bytes makes the hash independent of authoring
// whitespace and attribute order: two documents that parse to the same
// policies share a hash.
func HashDocument(d *policy.Document) (string, error) {
	text, err := d.Encode()
	if err != nil {
		return "", fmt.Errorf("compile: serialize document %q: %w", d.Name, err)
	}
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:]), nil
}

// revisionLen is how many hex digits of the combined hash form the
// bundle revision.
const revisionLen = 16

// interner deduplicates the small closed vocabulary of QNames repeated
// across policies (subjects, operations, fault types, action names) so
// the compiled set shares one backing string per distinct name.
type interner map[string]string

func (in interner) intern(s string) string {
	if v, ok := in[s]; ok {
		return v
	}
	in[s] = s
	return s
}

// Compile lowers a validated document set into a CompiledSet. Documents
// must already be valid (policy.Validate) — the Repository guarantees
// this before invoking the registered compiler; Compile itself only
// fails on duplicate document names or serialization errors. Lint
// warnings are collected into the set's Diagnostics (and per document
// into DocStatus.Diagnostics); warnings never block compilation.
func Compile(docs []*policy.Document) (*CompiledSet, error) {
	sorted := make([]*policy.Document, len(docs))
	copy(sorted, docs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	s := &CompiledSet{
		docs:          make(map[string]*DocStatus, len(sorted)),
		monBySubject:  make(map[string][]*CompiledMonitoring),
		protBySubject: make(map[string][]*CompiledProtection),
		adaptByEvent:  make(map[event.Type][]*CompiledAdaptation),
	}
	in := make(interner)
	revHash := sha256.New()
	ord := 0

	for _, d := range sorted {
		if _, dup := s.docs[d.Name]; dup {
			return nil, fmt.Errorf("compile: duplicate document name %q", d.Name)
		}
		hash, err := HashDocument(d)
		if err != nil {
			return nil, err
		}
		warnings := Lint(d)
		status := &DocStatus{
			Name:        d.Name,
			SHA256:      hash,
			Monitoring:  len(d.Monitoring),
			Adaptation:  len(d.Adaptation),
			Protection:  len(d.Protection),
			Diagnostics: warnings,
		}
		s.docs[d.Name] = status
		s.Manifest.Documents = append(s.Manifest.Documents, DocManifest{Name: d.Name, SHA256: hash})
		s.Diagnostics = append(s.Diagnostics, warnings...)
		fmt.Fprintf(revHash, "%s:%s\n", d.Name, hash)

		for _, mp := range d.Monitoring {
			s.addMonitoring(d.Name, mp, in, ord)
			ord++
		}
		for _, ap := range d.Adaptation {
			s.addAdaptation(d.Name, ap, in, ord)
			ord++
		}
		for _, pp := range d.Protection {
			s.addProtection(d.Name, pp, in, ord)
			ord++
		}
	}

	for _, bucket := range s.adaptByEvent {
		sortAdaptBucket(bucket)
	}
	sortAdaptBucket(s.adaptWild)

	s.Manifest.Revision = hex.EncodeToString(revHash.Sum(nil))[:revisionLen]
	s.Manifest.CompiledAt = time.Now().UTC()
	return s, nil
}

func sortAdaptBucket(bucket []*CompiledAdaptation) {
	sort.Slice(bucket, func(i, j int) bool { return adaptBefore(bucket[i], bucket[j]) })
}

func (s *CompiledSet) addMonitoring(doc string, mp *policy.MonitoringPolicy, in interner, ord int) {
	cm := &CompiledMonitoring{
		Doc:  in.intern(doc),
		Name: in.intern(mp.Name),
		Scope: policy.Scope{
			Subject:   in.intern(mp.Subject),
			Operation: in.intern(mp.Operation),
		},
		Pre:              compileAssertions(mp.PreConditions, in),
		Post:             compileAssertions(mp.PostConditions, in),
		Thresholds:       mp.Thresholds,
		ValidateContract: mp.ValidateContract,
		ord:              ord,
	}
	if cm.Scope.Subject == "" {
		s.monWild = append(s.monWild, cm)
	} else {
		s.monBySubject[cm.Scope.Subject] = append(s.monBySubject[cm.Scope.Subject], cm)
	}
	s.monitoring++
}

func compileAssertions(src []*policy.Assertion, in interner) []*CompiledAssertion {
	if len(src) == 0 {
		return nil
	}
	out := make([]*CompiledAssertion, len(src))
	for i, a := range src {
		out[i] = &CompiledAssertion{
			Name:      in.intern(a.Name),
			FaultType: in.intern(a.FaultType),
			src:       a,
			prog:      a.Expr.Program(),
		}
	}
	return out
}

func (s *CompiledSet) addAdaptation(doc string, ap *policy.AdaptationPolicy, in interner, ord int) {
	names := policy.ActionNames(ap.Actions)
	for i, n := range names {
		names[i] = in.intern(n)
	}
	ca := &CompiledAdaptation{
		AdaptationPolicy: ap,
		Doc:              in.intern(doc),
		ActionNames:      names,
		ActionsJoined:    decision.JoinActions(names),
		ord:              ord,
	}
	if ap.Condition != nil {
		ca.cond = ap.Condition.Program()
	}
	if ap.Trigger.EventType == "" {
		s.adaptWild = append(s.adaptWild, ca)
	} else {
		s.adaptByEvent[ap.Trigger.EventType] = append(s.adaptByEvent[ap.Trigger.EventType], ca)
	}
	s.adaptation++
}

func (s *CompiledSet) addProtection(doc string, pp *policy.ProtectionPolicy, in interner, ord int) {
	cp := &CompiledProtection{ProtectionPolicy: pp, Doc: in.intern(doc), ord: ord}
	if pp.Subject == "" {
		s.protWild = append(s.protWild, cp)
	} else {
		s.protBySubject[pp.Subject] = append(s.protBySubject[pp.Subject], cp)
	}
	s.protection++
}
