package compile

import (
	"fmt"
	"time"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
)

// Options configures Enable. Both fields are optional.
type Options struct {
	// Registry receives the masc_policy_* metric families.
	Registry *telemetry.Registry
	// Journal receives one audit entry per published (or rejected)
	// bundle swap.
	Journal *telemetry.Journal
}

// compileBuckets grade compile latency from trivial single-document
// sets up to large bundles.
var compileBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// Enable registers the compiler on the repository: from this call on,
// every mutation (Load, Unload, ReplaceAll) compiles the full incoming
// document set before publishing it, and Lookup returns the live
// CompiledSet via one atomic load. The current document set is compiled
// immediately. Each swap observes masc_policy_compile_seconds, counts
// into masc_policy_bundle_swaps_total{outcome}, updates the
// masc_policy_bundle_* gauges, and appends an audit-journal entry.
func Enable(r *policy.Repository, opts Options) error {
	var (
		compileSeconds *telemetry.HistogramVec
		swaps          *telemetry.CounterVec
		docsGauge      *telemetry.GaugeVec
		policiesGauge  *telemetry.GaugeVec
	)
	if reg := opts.Registry; reg != nil {
		compileSeconds = reg.Histogram("masc_policy_compile_seconds",
			"Latency of compiling the full policy document set into the decision IR.",
			compileBuckets)
		swaps = reg.Counter("masc_policy_bundle_swaps_total",
			"Policy bundle swap attempts by outcome (ok = new set published, error = rejected, previous set kept).",
			"outcome")
		docsGauge = reg.Gauge("masc_policy_bundle_documents",
			"Documents in the currently published policy bundle.")
		policiesGauge = reg.Gauge("masc_policy_bundle_policies",
			"Compiled policies in the currently published bundle, by policy type.",
			"type")
	}
	fn := func(docs []*policy.Document) (any, error) {
		start := time.Now()
		cs, err := Compile(docs)
		if compileSeconds != nil {
			compileSeconds.With().Observe(time.Since(start).Seconds())
		}
		if err != nil {
			if swaps != nil {
				swaps.With("error").Inc()
			}
			if opts.Journal != nil {
				opts.Journal.Record(telemetry.Entry{
					Level:     telemetry.LevelWarn,
					Kind:      telemetry.KindAudit,
					Component: "policy",
					Message:   fmt.Sprintf("policy bundle swap rejected, previous set keeps serving: %v", err),
					Fields:    map[string]string{"outcome": "error", "error": err.Error()},
				})
			}
			return nil, err
		}
		if swaps != nil {
			swaps.With("ok").Inc()
			docsGauge.With().Set(float64(len(cs.Manifest.Documents)))
			policiesGauge.With("monitoring").Set(float64(cs.monitoring))
			policiesGauge.With("adaptation").Set(float64(cs.adaptation))
			policiesGauge.With("protection").Set(float64(cs.protection))
		}
		if opts.Journal != nil {
			opts.Journal.Record(telemetry.Entry{
				Level:     telemetry.LevelInfo,
				Kind:      telemetry.KindAudit,
				Component: "policy",
				Message: fmt.Sprintf("policy bundle %s published: %d document(s), %d monitoring, %d adaptation, %d protection",
					cs.Manifest.Revision, len(cs.Manifest.Documents), cs.monitoring, cs.adaptation, cs.protection),
				Fields: map[string]string{
					"outcome":   "ok",
					"revision":  cs.Manifest.Revision,
					"documents": fmt.Sprint(len(cs.Manifest.Documents)),
				},
			})
		}
		return cs, nil
	}
	return r.SetCompiler(fn)
}

// Lookup returns the repository's live CompiledSet, or nil when no
// compiler is registered (interpreter mode). One atomic load; never
// takes the repository lock.
func Lookup(r *policy.Repository) *CompiledSet {
	cs, _ := r.Compiled().(*CompiledSet)
	return cs
}

// MonitoringsFor is the evaluation-site facade for monitoring lookups:
// compiled entries from the live set when one is published, or thin
// uncompiled wrappers over the repository interpreter otherwise — so
// each call site keeps a single loop either way.
func MonitoringsFor(r *policy.Repository, subject, operation string) []*CompiledMonitoring {
	if cs := Lookup(r); cs != nil {
		return cs.MonitoringFor(subject, operation)
	}
	src := r.MonitoringFor(subject, operation)
	if len(src) == 0 {
		return nil
	}
	out := make([]*CompiledMonitoring, len(src))
	for i, mp := range src {
		out[i] = &CompiledMonitoring{
			Doc:              "",
			Name:             mp.Name,
			Scope:            mp.Scope,
			Pre:              wrapAssertions(mp.PreConditions),
			Post:             wrapAssertions(mp.PostConditions),
			Thresholds:       mp.Thresholds,
			ValidateContract: mp.ValidateContract,
		}
	}
	return out
}

// wrapAssertions builds interpreter-backed assertion wrappers (nil
// program: EvalBool tree-walks the source expression).
func wrapAssertions(src []*policy.Assertion) []*CompiledAssertion {
	if len(src) == 0 {
		return nil
	}
	out := make([]*CompiledAssertion, len(src))
	for i, a := range src {
		out[i] = &CompiledAssertion{Name: a.Name, FaultType: a.FaultType, src: a}
	}
	return out
}

// AdaptationsFor is the evaluation-site facade for adaptation dispatch:
// compiled entries when a set is live, interpreter-backed wrappers
// otherwise.
func AdaptationsFor(r *policy.Repository, e event.Event, subject string) []*CompiledAdaptation {
	if cs := Lookup(r); cs != nil {
		return cs.AdaptationFor(e, subject)
	}
	src := r.AdaptationFor(e, subject)
	if len(src) == 0 {
		return nil
	}
	out := make([]*CompiledAdaptation, len(src))
	for i, ap := range src {
		names := policy.ActionNames(ap.Actions)
		out[i] = &CompiledAdaptation{
			AdaptationPolicy: ap,
			ActionNames:      names,
			ActionsJoined:    decision.JoinActions(names),
		}
	}
	return out
}

// ProtectionLookup is the evaluation-site facade for protection
// policies: the compiled first-match table when a set is live, the
// repository scan otherwise.
func ProtectionLookup(r *policy.Repository, subject string) *policy.ProtectionPolicy {
	if cs := Lookup(r); cs != nil {
		return cs.ProtectionFor(subject)
	}
	return r.ProtectionFor(subject)
}
