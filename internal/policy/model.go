// Package policy implements WS-Policy4MASC, the paper's novel policy
// language (§2): an extension of WS-Policy for specifying monitoring
// policies (functional pre/post conditions and QoS thresholds that
// detect adaptation needs) and adaptation policies (Event-Condition-
// Action rules with priorities, pre/post states, and business-value
// annotations that guide process reconfiguration).
//
// Policies are authored as XML documents (see Parse), loaded once into
// object form, and stored in a Repository that decision makers query
// per event — the "object representation of policies, which is updated
// only when policies change" optimization the paper plans for the .NET
// reimplementation (§3.2).
//
// The package is deliberately independent of the engines that enforce
// policies: process-layer activity specifications are carried as opaque
// XML subtrees interpreted by internal/workflow, and messaging-layer
// actions are interpreted by internal/bus.
package policy

import (
	"time"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/xpath"
)

// Namespace is the XML namespace of WS-Policy4MASC documents.
const Namespace = "urn:masc:ws-policy4masc"

// Document is a parsed WS-Policy4MASC file: a named collection of
// monitoring, adaptation, and protection policies.
type Document struct {
	// Name identifies the document (unique within a repository).
	Name string
	// Monitoring lists the monitoring policies in document order.
	Monitoring []*MonitoringPolicy
	// Adaptation lists the adaptation policies in document order.
	Adaptation []*AdaptationPolicy
	// Protection lists the protection policies in document order.
	Protection []*ProtectionPolicy
}

// Scope attaches a policy to its subject, the WS-PolicyAttachment
// analog. Policies "can be attached to Monitoring Points at various
// levels of granularity such as a Service Endpoint or a Service
// Operation" (§3.1(2)).
type Scope struct {
	// Subject names the attachment point: a VEP name ("vep:Retailer"),
	// an endpoint address, a service type, or a process definition name.
	Subject string
	// Operation optionally narrows the scope to one operation; empty
	// means all operations of the subject.
	Operation string
}

// Matches reports whether the scope covers the given subject and
// operation. An empty scope Subject matches everything.
func (s Scope) Matches(subject, operation string) bool {
	if s.Subject != "" && s.Subject != subject {
		return false
	}
	if s.Operation != "" && operation != "" && s.Operation != operation {
		return false
	}
	return true
}

// MonitoringPolicy specifies "the desired behavior of the system in
// terms of (a) pre-conditions and post-conditions that express
// constraints over exchanged messages (b) thresholds over QoS
// guarantees ... as stipulated in pre-established SLAs" (§3.1(2)).
type MonitoringPolicy struct {
	Name string
	Scope
	// PreConditions are evaluated against request messages.
	PreConditions []*Assertion
	// PostConditions are evaluated against response messages.
	PostConditions []*Assertion
	// Thresholds are evaluated against QoS snapshots.
	Thresholds []*QoSThreshold
	// ValidateContract requests WSDL contract validation of exchanged
	// messages.
	ValidateContract bool
}

// Assertion is one XPath constraint over a message. A violated
// assertion raises a fault event of the given type (the monitoring
// service "uses ECA rules to assign a meaningful fault type to the
// violation event").
type Assertion struct {
	// Name labels the assertion for diagnostics.
	Name string
	// Expr is the compiled XPath boolean constraint, evaluated with
	// the message envelope as document root.
	Expr *xpath.Compiled
	// FaultType is raised when the constraint evaluates false;
	// defaults to "ServiceFailureFault".
	FaultType string
}

// Metric names a QoS measurement a threshold can constrain.
type Metric string

// Metrics measured by the QoS Measurement Service (§3.1(1)).
const (
	MetricResponseTime Metric = "responseTime"
	MetricReliability  Metric = "reliability"
	MetricAvailability Metric = "availability"
)

// QoSThreshold is an SLA bound over a metric.
type QoSThreshold struct {
	// Name labels the threshold for diagnostics.
	Name string
	// Metric selects the measurement.
	Metric Metric
	// MaxResponse bounds response time (only for MetricResponseTime).
	MaxResponse time.Duration
	// MinValue bounds ratio metrics from below (reliability,
	// availability, in [0,1]).
	MinValue float64
	// MinSamples is the minimum number of observations before the
	// threshold is evaluated (avoids false alarms on cold metrics).
	MinSamples int
	// FaultType is raised on violation; defaults to "SLAViolationFault".
	FaultType string
}

// ProtectionPolicy configures wsBus self-protection for its subject
// VEP — the resource-level preventive adaptation the paper leaves as
// future work (§3.2 notes the Java listener "does not scale well with
// high number of requests"). Unlike adaptation policies, which react
// to classified faults, protection policies shape how the VEP admits
// and dispatches load *before* anything fails: admission control sheds
// excess requests, the circuit breaker skips backends that keep
// faulting, and hedging races a second backend when the first one
// stalls past its measured p95.
type ProtectionPolicy struct {
	Name string
	Scope
	// Admission bounds concurrent work per VEP (nil = unlimited).
	Admission *AdmissionSpec
	// Breaker opens per-backend circuit breakers (nil = disabled).
	Breaker *BreakerSpec
	// Hedge enables latency-triggered hedged invocation (nil =
	// disabled).
	Hedge *HedgeSpec
}

// AdmissionSpec bounds a VEP's concurrent work: at most MaxInFlight
// requests mediate at once, at most MaxQueue more wait for a slot, and
// everything beyond that is shed immediately as a ServerBusy fault.
type AdmissionSpec struct {
	// MaxInFlight is the in-flight mediation limit (> 0).
	MaxInFlight int
	// MaxQueue bounds the wait queue; 0 sheds as soon as MaxInFlight
	// is reached.
	MaxQueue int
	// QueueTimeout sheds a queued request that has not obtained a slot
	// within this interval (0 = wait as long as the caller's context
	// allows).
	QueueTimeout time.Duration
}

// BreakerSpec configures per-backend circuit breakers: after
// FailureThreshold consecutive classified faults the backend is
// skipped by selection for Cooldown, then a single half-open probe
// decides whether it closes again.
type BreakerSpec struct {
	// FailureThreshold is the consecutive-fault count that opens the
	// breaker (> 0).
	FailureThreshold int
	// Cooldown is how long an open breaker blocks the backend before
	// allowing a half-open probe.
	Cooldown time.Duration
}

// HedgeSpec configures hedged invocation: when a request's first
// attempt has run longer than AfterFactor × the backend's tracked p95
// response time, a second attempt is launched against the next-ranked
// healthy backend and the first healthy response wins — the paper's
// concurrent-invocation corrective action generalized into a
// preventive tail-latency policy.
type HedgeSpec struct {
	// AfterFactor scales the tracked p95 into the hedge delay
	// (default 1.0).
	AfterFactor float64
	// MinSamples is how many successful observations a backend needs
	// before its p95 is trusted for hedging (default 10).
	MinSamples int
	// MinDelay is a lower bound on the hedge delay, so cold or very
	// fast backends don't hedge on every request.
	MinDelay time.Duration
	// MaxHedges bounds extra attempts per request (default 1).
	MaxHedges int
}

// AdaptationKind is the paper's third classification dimension: why
// the adaptation is done (§1).
type AdaptationKind string

// Adaptation kinds.
const (
	// KindCustomization adds/removes/replaces activities specific to a
	// composition instance (business special cases).
	KindCustomization AdaptationKind = "customization"
	// KindCorrection handles faults reported during execution.
	KindCorrection AdaptationKind = "correction"
	// KindOptimization improves extra-functional issues noticed during
	// correct execution (paper future work; supported as extension).
	KindOptimization AdaptationKind = "optimization"
	// KindPrevention prevents future faults before they occur (paper
	// future work; supported as extension).
	KindPrevention AdaptationKind = "prevention"
)

// Layer is where an adaptation action is enacted: "either at the SOAP
// messaging layer (such as retry a service call) or at the process
// orchestration layer (such as skip a process activity or add/remove
// activity) or sometimes at both layers" (§3.1(3)).
type Layer string

// Enforcement layers.
const (
	LayerMessaging Layer = "messaging"
	LayerProcess   Layer = "process"
	LayerBoth      Layer = "both"
)

// Trigger is the E of the ECA rule: the event that causes policy
// evaluation.
type Trigger struct {
	// EventType selects which middleware events trigger evaluation
	// (e.g. event.TypeFaultDetected, event.TypeProcessStarted,
	// event.TypeMessageIntercepted).
	EventType event.Type
	// FaultType further narrows fault events to one classified fault
	// ("adaptation policies ... specify the necessary adaptations per
	// fault type"); empty matches any fault.
	FaultType string
}

// Matches reports whether the trigger fires for an event.
func (t Trigger) Matches(e event.Event) bool {
	if t.EventType != "" && t.EventType != e.Type {
		return false
	}
	if t.FaultType != "" && t.FaultType != e.FaultType {
		return false
	}
	return true
}

// BusinessValue is the monetary change associated with performing an
// adaptation — the hook for the paper's long-term goal of
// business-driven adaptation ("change of business value (e.g., monetary
// payments) associated with this adaptation", §2).
type BusinessValue struct {
	// Amount is the value change (positive = gain) in Currency units.
	Amount float64
	// Currency is the ISO currency code.
	Currency string
	// Reason documents the business rationale.
	Reason string
}

// AdaptationPolicy is an ECA rule guiding adaptation. Fields mirror
// the paper's §2 description of a WS-Policy4MASC adaptation policy:
// triggering events, relevance conditions, required pre-state, actions,
// post-state, and business value.
type AdaptationPolicy struct {
	Name string
	Scope
	// Kind classifies why the adaptation is performed.
	Kind AdaptationKind
	// Priority orders execution when several policies apply to one
	// event; higher runs first ("policy priorities are used to
	// determine the order of execution").
	Priority int
	// Layer is where the actions are enacted.
	Layer Layer
	// Trigger is the triggering event pattern.
	Trigger Trigger
	// Condition is an optional XPath relevance condition evaluated
	// against the triggering message (with event context exposed as
	// XPath variables; see monitor package). A nil condition is true.
	Condition *xpath.Compiled
	// StateBefore optionally names the state the adapted system must
	// be in before the adaptation (checked against the process
	// instance's adaptation state).
	StateBefore string
	// StateAfter optionally names the state recorded after a
	// successful adaptation.
	StateAfter string
	// Actions run in order until one fails in a way its semantics
	// treat as terminal (see each action type).
	Actions []Action
	// BusinessValue is the value change booked when the policy's
	// actions complete successfully.
	BusinessValue *BusinessValue
}
