package policy

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/masc-project/masc/internal/event"
)

// CompilerFunc lowers a full document set (sorted by document name)
// into an opaque compiled artifact. Registered by internal/policy/compile
// via SetCompiler; the indirection keeps this package free of a
// dependency on its own compiler. The returned artifact must be
// immutable: it is published to readers via a single atomic pointer.
type CompilerFunc func(docs []*Document) (artifact any, err error)

// Repository is the policy store queried by decision makers: "policy
// assertions are stored in a policy repository, which is a collection
// of instances of policy classes" (§2.1). Documents can be replaced at
// runtime — "when a WS-Policy4MASC document changes, these changes are
// automatically enforced the next time adaptation is needed with no
// need to restart any software component" (§2.2). Repository is safe
// for concurrent use.
//
// When a compiler is registered (SetCompiler), every mutation is
// transactional: the incoming document set is validated and compiled in
// full before the result is published with one atomic store, and on
// compile failure the mutation is rolled back — the previous documents
// and compiled artifact keep serving. Readers on the evaluation hot
// path call Compiled() and never take the repository lock.
type Repository struct {
	mu       sync.RWMutex
	docs     map[string]*Document
	compiler CompilerFunc
	compiled atomic.Value // compiledBox; nil artifact until SetCompiler
	revision atomic.Uint64
}

// compiledBox wraps the compiler artifact so atomic.Value always stores
// one concrete type (atomic.Value forbids storing differing types or
// untyped nil).
type compiledBox struct{ artifact any }

// NewRepository builds an empty repository.
func NewRepository() *Repository {
	return &Repository{docs: make(map[string]*Document)}
}

// SetCompiler registers the compiler and immediately compiles the
// current document set so readers see a consistent artifact from the
// moment of registration. Mutations recompile before publishing.
func (r *Repository) SetCompiler(fn CompilerFunc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.compiler = fn
	return r.recompileLocked()
}

// Compiled returns the artifact produced by the registered compiler for
// the current document set, or nil when no compiler is registered. It
// is a single atomic load — safe on the evaluation hot path, never
// blocked by concurrent mutations.
func (r *Repository) Compiled() any {
	if box, ok := r.compiled.Load().(compiledBox); ok {
		return box.artifact
	}
	return nil
}

// Revision returns a counter incremented on every published mutation
// (load, unload, bundle replace). Zero means never mutated.
func (r *Repository) Revision() uint64 { return r.revision.Load() }

// recompileLocked runs the registered compiler over the current
// (sorted) document set and publishes the artifact. Callers hold r.mu
// and roll the document map back if this fails.
func (r *Repository) recompileLocked() error {
	if r.compiler == nil {
		r.revision.Add(1)
		return nil
	}
	docs := make([]*Document, 0, len(r.docs))
	for _, name := range r.docNamesLocked() {
		docs = append(docs, r.docs[name])
	}
	artifact, err := r.compiler(docs)
	if err != nil {
		return err
	}
	r.compiled.Store(compiledBox{artifact: artifact})
	r.revision.Add(1)
	return nil
}

// Load validates the document and adds or replaces it (keyed by
// document name). With a compiler registered the swap is atomic: on
// compile failure the previous document (if any) is restored and keeps
// serving.
func (r *Repository) Load(d *Document) error {
	if err := Validate(d); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, existed := r.docs[d.Name]
	r.docs[d.Name] = d
	if err := r.recompileLocked(); err != nil {
		if existed {
			r.docs[d.Name] = prev
		} else {
			delete(r.docs, d.Name)
		}
		return err
	}
	return nil
}

// ReplaceAll atomically replaces the entire document set (a bundle
// transaction): every document is validated, then the whole set is
// compiled, and only then published. On any failure the previous set —
// documents and compiled artifact — keeps serving unchanged.
func (r *Repository) ReplaceAll(docs []*Document) error {
	next := make(map[string]*Document, len(docs))
	for _, d := range docs {
		if err := Validate(d); err != nil {
			return fmt.Errorf("document %q: %w", d.Name, err)
		}
		if _, dup := next[d.Name]; dup {
			return fmt.Errorf("%w: duplicate document name %q", ErrInvalid, d.Name)
		}
		next[d.Name] = d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.docs
	r.docs = next
	if err := r.recompileLocked(); err != nil {
		r.docs = prev
		return err
	}
	return nil
}

// LoadXML parses and loads a document from XML text.
func (r *Repository) LoadXML(text string) (*Document, error) {
	d, err := ParseString(text)
	if err != nil {
		return nil, err
	}
	if err := r.Load(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Unload removes the named document and reports whether it existed.
// Removal never fails compilation of the remaining set in practice, but
// if it does the document is restored.
func (r *Repository) Unload(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev, ok := r.docs[name]
	if !ok {
		return false
	}
	delete(r.docs, name)
	if err := r.recompileLocked(); err != nil {
		r.docs[name] = prev
		return false
	}
	return true
}

// Document returns the named loaded document, or nil.
func (r *Repository) Document(name string) *Document {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.docs[name]
}

// Snapshot returns the loaded documents sorted by name. The slice is
// fresh but the documents are shared — treat them as read-only.
func (r *Repository) Snapshot() []*Document {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Document, 0, len(r.docs))
	for _, name := range r.docNamesLocked() {
		out = append(out, r.docs[name])
	}
	return out
}

// Documents returns the loaded document names, sorted.
func (r *Repository) Documents() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.docs))
	for name := range r.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counts returns the number of loaded monitoring and adaptation
// policies across all documents (health/status reporting).
func (r *Repository) Counts() (monitoring, adaptation int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, d := range r.docs {
		monitoring += len(d.Monitoring)
		adaptation += len(d.Adaptation)
	}
	return monitoring, adaptation
}

// ProtectionFor returns the first protection policy whose scope covers
// the subject, in (document name, document order); nil when none
// applies. Protection policies configure a whole VEP, so unlike
// monitoring and adaptation policies they do not stack.
func (r *Repository) ProtectionFor(subject string) *ProtectionPolicy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.docNamesLocked() {
		for _, pp := range r.docs[name].Protection {
			if pp.Scope.Matches(subject, "") {
				return pp
			}
		}
	}
	return nil
}

// ProtectionCount returns the number of loaded protection policies.
func (r *Repository) ProtectionCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, d := range r.docs {
		n += len(d.Protection)
	}
	return n
}

// MonitoringFor returns the monitoring policies whose scope covers the
// subject and operation, in (document name, document order).
func (r *Repository) MonitoringFor(subject, operation string) []*MonitoringPolicy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*MonitoringPolicy
	for _, name := range r.docNamesLocked() {
		for _, mp := range r.docs[name].Monitoring {
			if mp.Scope.Matches(subject, operation) {
				out = append(out, mp)
			}
		}
	}
	return out
}

// AdaptationFor returns the adaptation policies triggered by the event
// whose scope covers the event's subject, ordered by descending
// priority (ties broken by name for determinism). The caller evaluates
// each policy's Condition separately because condition evaluation needs
// the message and variable context.
func (r *Repository) AdaptationFor(e event.Event, subject string) []*AdaptationPolicy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*AdaptationPolicy
	for _, name := range r.docNamesLocked() {
		for _, ap := range r.docs[name].Adaptation {
			if !ap.Trigger.Matches(e) {
				continue
			}
			if !ap.Scope.Matches(subject, e.Operation) {
				continue
			}
			out = append(out, ap)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AdaptationByName finds a policy by name across documents.
func (r *Repository) AdaptationByName(name string) (*AdaptationPolicy, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, docName := range r.docNamesLocked() {
		for _, ap := range r.docs[docName].Adaptation {
			if ap.Name == name {
				return ap, nil
			}
		}
	}
	return nil, fmt.Errorf("policy: no adaptation policy named %q", name)
}

func (r *Repository) docNamesLocked() []string {
	names := make([]string, 0, len(r.docs))
	for n := range r.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
