package policy

import (
	"fmt"
	"sort"
	"sync"

	"github.com/masc-project/masc/internal/event"
)

// Repository is the policy store queried by decision makers: "policy
// assertions are stored in a policy repository, which is a collection
// of instances of policy classes" (§2.1). Documents can be replaced at
// runtime — "when a WS-Policy4MASC document changes, these changes are
// automatically enforced the next time adaptation is needed with no
// need to restart any software component" (§2.2). Repository is safe
// for concurrent use.
type Repository struct {
	mu   sync.RWMutex
	docs map[string]*Document
}

// NewRepository builds an empty repository.
func NewRepository() *Repository {
	return &Repository{docs: make(map[string]*Document)}
}

// Load validates the document and adds or replaces it (keyed by
// document name).
func (r *Repository) Load(d *Document) error {
	if err := Validate(d); err != nil {
		return err
	}
	r.mu.Lock()
	r.docs[d.Name] = d
	r.mu.Unlock()
	return nil
}

// LoadXML parses and loads a document from XML text.
func (r *Repository) LoadXML(text string) (*Document, error) {
	d, err := ParseString(text)
	if err != nil {
		return nil, err
	}
	if err := r.Load(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Unload removes the named document and reports whether it existed.
func (r *Repository) Unload(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.docs[name]; !ok {
		return false
	}
	delete(r.docs, name)
	return true
}

// Documents returns the loaded document names, sorted.
func (r *Repository) Documents() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.docs))
	for name := range r.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counts returns the number of loaded monitoring and adaptation
// policies across all documents (health/status reporting).
func (r *Repository) Counts() (monitoring, adaptation int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, d := range r.docs {
		monitoring += len(d.Monitoring)
		adaptation += len(d.Adaptation)
	}
	return monitoring, adaptation
}

// ProtectionFor returns the first protection policy whose scope covers
// the subject, in (document name, document order); nil when none
// applies. Protection policies configure a whole VEP, so unlike
// monitoring and adaptation policies they do not stack.
func (r *Repository) ProtectionFor(subject string) *ProtectionPolicy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.docNamesLocked() {
		for _, pp := range r.docs[name].Protection {
			if pp.Scope.Matches(subject, "") {
				return pp
			}
		}
	}
	return nil
}

// ProtectionCount returns the number of loaded protection policies.
func (r *Repository) ProtectionCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, d := range r.docs {
		n += len(d.Protection)
	}
	return n
}

// MonitoringFor returns the monitoring policies whose scope covers the
// subject and operation, in (document name, document order).
func (r *Repository) MonitoringFor(subject, operation string) []*MonitoringPolicy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*MonitoringPolicy
	for _, name := range r.docNamesLocked() {
		for _, mp := range r.docs[name].Monitoring {
			if mp.Scope.Matches(subject, operation) {
				out = append(out, mp)
			}
		}
	}
	return out
}

// AdaptationFor returns the adaptation policies triggered by the event
// whose scope covers the event's subject, ordered by descending
// priority (ties broken by name for determinism). The caller evaluates
// each policy's Condition separately because condition evaluation needs
// the message and variable context.
func (r *Repository) AdaptationFor(e event.Event, subject string) []*AdaptationPolicy {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*AdaptationPolicy
	for _, name := range r.docNamesLocked() {
		for _, ap := range r.docs[name].Adaptation {
			if !ap.Trigger.Matches(e) {
				continue
			}
			if !ap.Scope.Matches(subject, e.Operation) {
				continue
			}
			out = append(out, ap)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// AdaptationByName finds a policy by name across documents.
func (r *Repository) AdaptationByName(name string) (*AdaptationPolicy, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, docName := range r.docNamesLocked() {
		for _, ap := range r.docs[docName].Adaptation {
			if ap.Name == name {
				return ap, nil
			}
		}
	}
	return nil, fmt.Errorf("policy: no adaptation policy named %q", name)
}

func (r *Repository) docNamesLocked() []string {
	names := make([]string, 0, len(r.docs))
	for n := range r.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
