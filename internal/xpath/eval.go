package xpath

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"

	"github.com/masc-project/masc/internal/xmltree"
)

type evaluator struct {
	env  Context
	root *xmltree.Element
	doc  *xmltree.Element // lazily created virtual document node
}

// docNode returns a synthetic document node whose only child is the
// root element, so that absolute paths like /Envelope select the root
// element itself (XPath evaluates "/" to the document node, which our
// element-only model does not otherwise have). The root's parent link
// is deliberately left nil so ".." from the root selects nothing.
func (ev *evaluator) docNode() *xmltree.Element {
	if ev.doc == nil {
		ev.doc = &xmltree.Element{Children: []*xmltree.Element{ev.root}}
	}
	return ev.doc
}

// evalPos is the dynamic context: the context node plus its proximity
// position and the context size (for position()/last()).
type evalPos struct {
	node Node
	pos  int
	size int
}

func (ev *evaluator) eval(e expr, ctx evalPos) (Value, error) {
	switch x := e.(type) {
	case literalExpr:
		return String(x.s), nil
	case numberExpr:
		return Number(x.f), nil
	case varExpr:
		v, ok := ev.env.Vars[x.name]
		if !ok {
			return nil, fmt.Errorf("undefined variable $%s", x.name)
		}
		return v, nil
	case negExpr:
		v, err := ev.eval(x.operand, ctx)
		if err != nil {
			return nil, err
		}
		return Number(-v.Number()), nil
	case binaryExpr:
		return ev.evalBinary(x, ctx)
	case unionExpr:
		return ev.evalUnion(x, ctx)
	case funcExpr:
		return ev.evalFunc(x, ctx)
	case filterExpr:
		return ev.evalFilter(x, ctx)
	case pathExpr:
		return ev.evalPath(x, ctx)
	default:
		return nil, fmt.Errorf("unknown expression node %T", e)
	}
}

func (ev *evaluator) evalBinary(x binaryExpr, ctx evalPos) (Value, error) {
	switch x.op {
	case "or":
		l, err := ev.eval(x.lhs, ctx)
		if err != nil {
			return nil, err
		}
		if l.Bool() {
			return Bool(true), nil
		}
		r, err := ev.eval(x.rhs, ctx)
		if err != nil {
			return nil, err
		}
		return Bool(r.Bool()), nil
	case "and":
		l, err := ev.eval(x.lhs, ctx)
		if err != nil {
			return nil, err
		}
		if !l.Bool() {
			return Bool(false), nil
		}
		r, err := ev.eval(x.rhs, ctx)
		if err != nil {
			return nil, err
		}
		return Bool(r.Bool()), nil
	}

	l, err := ev.eval(x.lhs, ctx)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(x.rhs, ctx)
	if err != nil {
		return nil, err
	}

	switch x.op {
	case "=", "!=", "<", "<=", ">", ">=":
		return Bool(compare(x.op, l, r)), nil
	case "+":
		return Number(l.Number() + r.Number()), nil
	case "-":
		return Number(l.Number() - r.Number()), nil
	case "*":
		return Number(l.Number() * r.Number()), nil
	case "div":
		return Number(l.Number() / r.Number()), nil
	case "mod":
		return Number(math.Mod(l.Number(), r.Number())), nil
	default:
		return nil, fmt.Errorf("unknown operator %q", x.op)
	}
}

// compare implements XPath 1.0 comparison semantics, including the
// existential semantics of node-set operands.
func compare(op string, l, r Value) bool {
	ls, lIsSet := l.(NodeSet)
	rs, rIsSet := r.(NodeSet)
	// Node-set vs boolean compares boolean(node-set), not each node
	// (XPath 1.0 §3.4).
	if (op == "=" || op == "!=") && (lIsSet != rIsSet) {
		if _, rIsBool := r.(Bool); rIsBool && lIsSet {
			return compareScalar(op, Bool(l.Bool()), r)
		}
		if _, lIsBool := l.(Bool); lIsBool && rIsSet {
			return compareScalar(op, l, Bool(r.Bool()))
		}
	}
	switch {
	case lIsSet && rIsSet:
		for _, a := range ls {
			for _, b := range rs {
				if compareScalar(op, String(a.StringValue()), String(b.StringValue())) {
					return true
				}
			}
		}
		return false
	case lIsSet:
		for _, a := range ls {
			if compareScalar(op, nodeScalar(a, r), r) {
				return true
			}
		}
		return false
	case rIsSet:
		for _, b := range rs {
			if compareScalar(op, l, nodeScalar(b, l)) {
				return true
			}
		}
		return false
	default:
		return compareScalar(op, l, r)
	}
}

// nodeScalar converts a node to the scalar kind of the other operand.
func nodeScalar(n Node, other Value) Value {
	switch other.(type) {
	case Number:
		return Number(stringToNumber(n.StringValue()))
	case Bool:
		return Bool(true) // a node exists
	default:
		return String(n.StringValue())
	}
}

func compareScalar(op string, l, r Value) bool {
	switch op {
	case "=", "!=":
		var eq bool
		switch {
		case isBool(l) || isBool(r):
			eq = l.Bool() == r.Bool()
		case isNumber(l) || isNumber(r):
			eq = l.Number() == r.Number()
		default:
			eq = l.String() == r.String()
		}
		if op == "=" {
			return eq
		}
		return !eq
	case "<":
		return l.Number() < r.Number()
	case "<=":
		return l.Number() <= r.Number()
	case ">":
		return l.Number() > r.Number()
	case ">=":
		return l.Number() >= r.Number()
	}
	return false
}

func isBool(v Value) bool   { _, ok := v.(Bool); return ok }
func isNumber(v Value) bool { _, ok := v.(Number); return ok }

func (ev *evaluator) evalUnion(x unionExpr, ctx evalPos) (Value, error) {
	var out NodeSet
	seen := map[Node]bool{}
	for _, part := range x.parts {
		v, err := ev.eval(part, ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("union operand is %T, not a node-set", v)
		}
		for _, n := range ns {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out, nil
}

func (ev *evaluator) evalFilter(x filterExpr, ctx evalPos) (Value, error) {
	v, err := ev.eval(x.primary, ctx)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("predicate applied to %T, not a node-set", v)
	}
	for _, pred := range x.preds {
		ns, err = ev.applyPredicate(ns, pred)
		if err != nil {
			return nil, err
		}
	}
	return ns, nil
}

func (ev *evaluator) evalPath(x pathExpr, ctx evalPos) (Value, error) {
	var current NodeSet
	switch {
	case x.filter != nil:
		v, err := ev.eval(x.filter, ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("path rooted at %T, not a node-set", v)
		}
		current = ns
	case x.absolute:
		current = NodeSet{{El: ev.docNode()}}
	default:
		current = NodeSet{ctx.node}
	}

	for _, st := range x.steps {
		next, err := ev.applyStep(current, st)
		if err != nil {
			return nil, err
		}
		current = next
	}
	return current, nil
}

func (ev *evaluator) applyStep(input NodeSet, st step) (NodeSet, error) {
	var out NodeSet
	seen := map[Node]bool{}
	for _, ctxNode := range input {
		bases := NodeSet{ctxNode}
		if st.fromDescendant {
			bases = descendantOrSelf(ctxNode)
		}
		for _, base := range bases {
			// text() selects the character data of the step's context
			// node. Text lives on elements in this data model, so the
			// step resolves to the context node itself when it carries
			// text (e.g. /Order/Amount/text() selects the Amount
			// element, whose string-value is its text).
			if st.test.nodeType == "text" {
				st.axis = axisSelf
			}
			cands, err := ev.axisCandidates(base, st)
			if err != nil {
				return nil, err
			}
			// Predicates apply per context node with proximity positions.
			for _, pred := range st.preds {
				cands, err = ev.applyPredicate(cands, pred)
				if err != nil {
					return nil, err
				}
			}
			for _, n := range cands {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	return out, nil
}

func descendantOrSelf(n Node) NodeSet {
	if n.IsAttr() {
		return NodeSet{n}
	}
	var out NodeSet
	n.El.Walk(func(e *xmltree.Element) bool {
		out = append(out, Node{El: e})
		return true
	})
	return out
}

// axisNodes enumerates the raw candidate nodes of one axis from a base
// node, before any node test is applied. Shared by the tree-walking
// evaluator and the compiled Program path.
func axisNodes(base Node, axis axisKind) (NodeSet, error) {
	var raw NodeSet
	switch axis {
	case axisSelf:
		raw = NodeSet{base}
	case axisParent:
		switch {
		case base.IsAttr():
			raw = NodeSet{{El: base.El}}
		case base.El.Parent() != nil:
			raw = NodeSet{{El: base.El.Parent()}}
		}
	case axisChild:
		if !base.IsAttr() {
			for _, c := range base.El.Children {
				raw = append(raw, Node{El: c})
			}
		}
	case axisAttribute:
		if !base.IsAttr() {
			for i := range base.El.Attrs {
				raw = append(raw, Node{El: base.El, Attr: &base.El.Attrs[i]})
			}
		}
	case axisDescendant:
		if !base.IsAttr() {
			for _, c := range base.El.Children {
				c.Walk(func(e *xmltree.Element) bool {
					raw = append(raw, Node{El: e})
					return true
				})
			}
		}
	case axisDescendantOrSelf:
		raw = descendantOrSelf(base)
	default:
		return nil, fmt.Errorf("unsupported axis %d", axis)
	}
	return raw, nil
}

func (ev *evaluator) axisCandidates(base Node, st step) (NodeSet, error) {
	raw, err := axisNodes(base, st.axis)
	if err != nil {
		return nil, err
	}

	out := raw[:0]
	for _, n := range raw {
		ok, err := ev.matchTest(n, st)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, n)
		}
	}
	return out, nil
}

func (ev *evaluator) matchTest(n Node, st step) (bool, error) {
	t := st.test
	switch t.nodeType {
	case "node":
		return true, nil
	case "text":
		// Approximation for this data model: text lives on elements, so
		// text() matches an element node that carries character data.
		return !n.IsAttr() && n.El.Text != "", nil
	}
	// Name tests. On the attribute axis they match attributes; on the
	// others, elements.
	if st.axis == axisAttribute != n.IsAttr() {
		return false, nil
	}
	name := n.Name()
	if name.Local == "" {
		// The virtual document node never matches a name test.
		return false, nil
	}
	if t.anyName {
		if t.prefix == "" {
			return true, nil
		}
		uri, ok := ev.env.Namespaces[t.prefix]
		if !ok {
			return false, fmt.Errorf("unbound namespace prefix %q", t.prefix)
		}
		return name.Space == uri, nil
	}
	if name.Local != t.local {
		return false, nil
	}
	if t.prefix == "" {
		// Deviation (documented): unprefixed matches any namespace.
		return true, nil
	}
	uri, ok := ev.env.Namespaces[t.prefix]
	if !ok {
		return false, fmt.Errorf("unbound namespace prefix %q", t.prefix)
	}
	return name.Space == uri, nil
}

func (ev *evaluator) applyPredicate(cands NodeSet, pred expr) (NodeSet, error) {
	var out NodeSet
	size := len(cands)
	for i, n := range cands {
		v, err := ev.eval(pred, evalPos{node: n, pos: i + 1, size: size})
		if err != nil {
			return nil, err
		}
		keep := false
		if num, ok := v.(Number); ok {
			keep = float64(i+1) == float64(num)
		} else {
			keep = v.Bool()
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}

// --- Function library ---

var regexCache sync.Map // pattern string -> *regexp.Regexp

func compileRegex(pattern string) (*regexp.Regexp, error) {
	if re, ok := regexCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	regexCache.Store(pattern, re)
	return re, nil
}

func (ev *evaluator) evalFunc(x funcExpr, ctx evalPos) (Value, error) {
	args := make([]Value, 0, len(x.args))
	for _, a := range x.args {
		v, err := ev.eval(a, ctx)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return applyFunc(x.name, args, ctx)
}

// applyFunc applies the XPath function library to already-evaluated
// arguments. Shared by the tree-walking evaluator and compiled Programs
// so both report identical runtime errors.
func applyFunc(name string, args []Value, ctx evalPos) (Value, error) {
	argc := func(want ...int) error {
		for _, w := range want {
			if len(args) == w {
				return nil
			}
		}
		return fmt.Errorf("%s(): got %d arguments", name, len(args))
	}
	nodeSetArg := func(i int) (NodeSet, error) {
		ns, ok := args[i].(NodeSet)
		if !ok {
			return nil, fmt.Errorf("%s(): argument %d is %T, not a node-set", name, i+1, args[i])
		}
		return ns, nil
	}
	strOrCtx := func() string {
		if len(args) >= 1 {
			return args[0].String()
		}
		return ctx.node.StringValue()
	}

	switch name {
	case "true":
		if err := argc(0); err != nil {
			return nil, err
		}
		return Bool(true), nil
	case "false":
		if err := argc(0); err != nil {
			return nil, err
		}
		return Bool(false), nil
	case "not":
		if err := argc(1); err != nil {
			return nil, err
		}
		return Bool(!args[0].Bool()), nil
	case "boolean":
		if err := argc(1); err != nil {
			return nil, err
		}
		return Bool(args[0].Bool()), nil
	case "number":
		if err := argc(0, 1); err != nil {
			return nil, err
		}
		if len(args) == 1 {
			return Number(args[0].Number()), nil
		}
		return Number(stringToNumber(ctx.node.StringValue())), nil
	case "string":
		if err := argc(0, 1); err != nil {
			return nil, err
		}
		return String(strOrCtx()), nil
	case "count":
		if err := argc(1); err != nil {
			return nil, err
		}
		ns, err := nodeSetArg(0)
		if err != nil {
			return nil, err
		}
		return Number(len(ns)), nil
	case "sum":
		if err := argc(1); err != nil {
			return nil, err
		}
		ns, err := nodeSetArg(0)
		if err != nil {
			return nil, err
		}
		var total float64
		for _, n := range ns {
			total += stringToNumber(n.StringValue())
		}
		return Number(total), nil
	case "position":
		if err := argc(0); err != nil {
			return nil, err
		}
		return Number(ctx.pos), nil
	case "last":
		if err := argc(0); err != nil {
			return nil, err
		}
		return Number(ctx.size), nil
	case "contains":
		if err := argc(2); err != nil {
			return nil, err
		}
		return Bool(strings.Contains(args[0].String(), args[1].String())), nil
	case "starts-with":
		if err := argc(2); err != nil {
			return nil, err
		}
		return Bool(strings.HasPrefix(args[0].String(), args[1].String())), nil
	case "concat":
		if len(args) < 2 {
			return nil, fmt.Errorf("concat(): need at least 2 arguments, got %d", len(args))
		}
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(a.String())
		}
		return String(sb.String()), nil
	case "substring":
		if err := argc(2, 3); err != nil {
			return nil, err
		}
		s := args[0].String()
		runes := []rune(s)
		start := int(math.Round(args[1].Number())) // 1-based
		end := len(runes) + 1
		if len(args) == 3 {
			end = start + int(math.Round(args[2].Number()))
		}
		if start < 1 {
			start = 1
		}
		if end > len(runes)+1 {
			end = len(runes) + 1
		}
		if start >= end {
			return String(""), nil
		}
		return String(string(runes[start-1 : end-1])), nil
	case "string-length":
		if err := argc(0, 1); err != nil {
			return nil, err
		}
		return Number(len([]rune(strOrCtx()))), nil
	case "normalize-space":
		if err := argc(0, 1); err != nil {
			return nil, err
		}
		return String(strings.Join(strings.Fields(strOrCtx()), " ")), nil
	case "name", "local-name":
		if err := argc(0, 1); err != nil {
			return nil, err
		}
		var n Node
		if len(args) == 1 {
			ns, err := nodeSetArg(0)
			if err != nil {
				return nil, err
			}
			if len(ns) == 0 {
				return String(""), nil
			}
			n = ns[0]
		} else {
			n = ctx.node
		}
		return String(n.Name().Local), nil
	case "floor":
		if err := argc(1); err != nil {
			return nil, err
		}
		return Number(math.Floor(args[0].Number())), nil
	case "ceiling":
		if err := argc(1); err != nil {
			return nil, err
		}
		return Number(math.Ceil(args[0].Number())), nil
	case "round":
		if err := argc(1); err != nil {
			return nil, err
		}
		return Number(math.Round(args[0].Number())), nil
	case "substring-before":
		if err := argc(2); err != nil {
			return nil, err
		}
		s := args[0].String()
		if i := strings.Index(s, args[1].String()); i >= 0 {
			return String(s[:i]), nil
		}
		return String(""), nil
	case "substring-after":
		if err := argc(2); err != nil {
			return nil, err
		}
		s, sep := args[0].String(), args[1].String()
		if i := strings.Index(s, sep); i >= 0 {
			return String(s[i+len(sep):]), nil
		}
		return String(""), nil
	case "translate":
		if err := argc(3); err != nil {
			return nil, err
		}
		from := []rune(args[1].String())
		to := []rune(args[2].String())
		repl := make(map[rune]rune, len(from))
		drop := make(map[rune]bool)
		for i, r := range from {
			if _, seen := repl[r]; seen || drop[r] {
				continue
			}
			if i < len(to) {
				repl[r] = to[i]
			} else {
				drop[r] = true
			}
		}
		return String(strings.Map(func(r rune) rune {
			if drop[r] {
				return -1
			}
			if v, ok := repl[r]; ok {
				return v
			}
			return r
		}, args[0].String())), nil
	case "matches":
		// Extension: regular-expression matching, per the paper's "simple
		// rules expressed as a regular expression or XPath query".
		if err := argc(2); err != nil {
			return nil, err
		}
		re, err := compileRegex(args[1].String())
		if err != nil {
			return nil, fmt.Errorf("matches(): %w", err)
		}
		return Bool(re.MatchString(args[0].String())), nil
	default:
		return nil, fmt.Errorf("unknown function %s()", name)
	}
}
