package xpath

import (
	"fmt"
	"math"

	"github.com/masc-project/masc/internal/xmltree"
)

// Program is a Compiled expression lowered into a tree of closures: the
// AST is walked once at lowering time, and every per-evaluation decision
// that depends only on the expression shape (operator dispatch, step
// axis selection, the text() axis rewrite, function identity) is
// resolved then. Evaluation runs the pre-bound closures directly with no
// type switches over AST nodes. Programs are immutable and safe for
// concurrent use.
//
// A Program is observationally identical to evaluating the Compiled
// expression it was lowered from: same values, same runtime errors
// (including error text). The policy compiler relies on this equivalence
// and the differential tests in internal/policy/compile enforce it.
type Program struct {
	src string
	fn  progFn
}

// progFn is one lowered expression node: evaluate against the dynamic
// context and return the value.
type progFn func(ev *evaluator, ctx evalPos) (Value, error)

// Program lowers the compiled expression into a closure program.
// Lowering is infallible: every AST shape Compile can produce has a
// lowering, and runtime-only failures (unbound prefixes, undefined
// variables, unknown functions) stay runtime errors exactly as in tree
// evaluation.
func (c *Compiled) Program() *Program {
	return &Program{src: c.src, fn: lowerExpr(c.expr)}
}

// Source returns the original expression text.
func (p *Program) Source() string { return p.src }

// Eval evaluates the program with root as both the context node and the
// document root, using an empty Context.
func (p *Program) Eval(root *xmltree.Element) (Value, error) {
	return p.EvalContext(root, Context{})
}

// EvalContext evaluates the program against root with the given
// environment.
func (p *Program) EvalContext(root *xmltree.Element, env Context) (Value, error) {
	ev := &evaluator{env: env, root: root}
	return p.fn(ev, evalPos{node: Node{El: root}, pos: 1, size: 1})
}

// EvalBool is a convenience wrapper returning the boolean value.
func (p *Program) EvalBool(root *xmltree.Element, env Context) (bool, error) {
	v, err := p.EvalContext(root, env)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

// EvalString is a convenience wrapper returning the string value.
func (p *Program) EvalString(root *xmltree.Element, env Context) (string, error) {
	v, err := p.EvalContext(root, env)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// EvalNumber is a convenience wrapper returning the numeric value.
func (p *Program) EvalNumber(root *xmltree.Element, env Context) (float64, error) {
	v, err := p.EvalContext(root, env)
	if err != nil {
		return 0, err
	}
	return v.Number(), nil
}

// EvalNodes evaluates and returns the node-set result, or an error if
// the expression does not yield a node-set.
func (p *Program) EvalNodes(root *xmltree.Element, env Context) (NodeSet, error) {
	v, err := p.EvalContext(root, env)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: %q evaluates to %T, not a node-set", p.src, v)
	}
	return ns, nil
}

// --- Lowering ---

func lowerExpr(e expr) progFn {
	switch x := e.(type) {
	case literalExpr:
		v := String(x.s)
		return func(*evaluator, evalPos) (Value, error) { return v, nil }
	case numberExpr:
		v := Number(x.f)
		return func(*evaluator, evalPos) (Value, error) { return v, nil }
	case varExpr:
		name := x.name
		return func(ev *evaluator, _ evalPos) (Value, error) {
			v, ok := ev.env.Vars[name]
			if !ok {
				return nil, fmt.Errorf("undefined variable $%s", name)
			}
			return v, nil
		}
	case negExpr:
		operand := lowerExpr(x.operand)
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			v, err := operand(ev, ctx)
			if err != nil {
				return nil, err
			}
			return Number(-v.Number()), nil
		}
	case binaryExpr:
		return lowerBinary(x)
	case unionExpr:
		return lowerUnion(x)
	case funcExpr:
		return lowerFunc(x)
	case filterExpr:
		return lowerFilter(x)
	case pathExpr:
		return lowerPath(x)
	default:
		// Unreachable for anything Compile produces; defer to the tree
		// evaluator so behavior (and its error) stays identical.
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			return ev.eval(e, ctx)
		}
	}
}

func lowerBinary(x binaryExpr) progFn {
	lhs := lowerExpr(x.lhs)
	rhs := lowerExpr(x.rhs)
	switch x.op {
	case "or":
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			l, err := lhs(ev, ctx)
			if err != nil {
				return nil, err
			}
			if l.Bool() {
				return Bool(true), nil
			}
			r, err := rhs(ev, ctx)
			if err != nil {
				return nil, err
			}
			return Bool(r.Bool()), nil
		}
	case "and":
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			l, err := lhs(ev, ctx)
			if err != nil {
				return nil, err
			}
			if !l.Bool() {
				return Bool(false), nil
			}
			r, err := rhs(ev, ctx)
			if err != nil {
				return nil, err
			}
			return Bool(r.Bool()), nil
		}
	case "=", "!=", "<", "<=", ">", ">=":
		op := x.op
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			l, r, err := evalPair(ev, ctx, lhs, rhs)
			if err != nil {
				return nil, err
			}
			return Bool(compare(op, l, r)), nil
		}
	case "+":
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			l, r, err := evalPair(ev, ctx, lhs, rhs)
			if err != nil {
				return nil, err
			}
			return Number(l.Number() + r.Number()), nil
		}
	case "-":
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			l, r, err := evalPair(ev, ctx, lhs, rhs)
			if err != nil {
				return nil, err
			}
			return Number(l.Number() - r.Number()), nil
		}
	case "*":
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			l, r, err := evalPair(ev, ctx, lhs, rhs)
			if err != nil {
				return nil, err
			}
			return Number(l.Number() * r.Number()), nil
		}
	case "div":
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			l, r, err := evalPair(ev, ctx, lhs, rhs)
			if err != nil {
				return nil, err
			}
			return Number(l.Number() / r.Number()), nil
		}
	case "mod":
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			l, r, err := evalPair(ev, ctx, lhs, rhs)
			if err != nil {
				return nil, err
			}
			return Number(math.Mod(l.Number(), r.Number())), nil
		}
	default:
		op := x.op
		return func(ev *evaluator, ctx evalPos) (Value, error) {
			if _, _, err := evalPair(ev, ctx, lhs, rhs); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("unknown operator %q", op)
		}
	}
}

func evalPair(ev *evaluator, ctx evalPos, lhs, rhs progFn) (Value, Value, error) {
	l, err := lhs(ev, ctx)
	if err != nil {
		return nil, nil, err
	}
	r, err := rhs(ev, ctx)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func lowerUnion(x unionExpr) progFn {
	parts := make([]progFn, len(x.parts))
	for i, p := range x.parts {
		parts[i] = lowerExpr(p)
	}
	return func(ev *evaluator, ctx evalPos) (Value, error) {
		var out NodeSet
		seen := map[Node]bool{}
		for _, part := range parts {
			v, err := part(ev, ctx)
			if err != nil {
				return nil, err
			}
			ns, ok := v.(NodeSet)
			if !ok {
				return nil, fmt.Errorf("union operand is %T, not a node-set", v)
			}
			for _, n := range ns {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
		return out, nil
	}
}

func lowerFunc(x funcExpr) progFn {
	name := x.name
	args := make([]progFn, len(x.args))
	for i, a := range x.args {
		args[i] = lowerExpr(a)
	}
	return func(ev *evaluator, ctx evalPos) (Value, error) {
		vals := make([]Value, len(args))
		for i, a := range args {
			v, err := a(ev, ctx)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return applyFunc(name, vals, ctx)
	}
}

func lowerFilter(x filterExpr) progFn {
	primary := lowerExpr(x.primary)
	preds := lowerPreds(x.preds)
	return func(ev *evaluator, ctx evalPos) (Value, error) {
		v, err := primary(ev, ctx)
		if err != nil {
			return nil, err
		}
		ns, ok := v.(NodeSet)
		if !ok {
			return nil, fmt.Errorf("predicate applied to %T, not a node-set", v)
		}
		for _, pred := range preds {
			ns, err = applyPredicateProg(ev, ns, pred)
			if err != nil {
				return nil, err
			}
		}
		return ns, nil
	}
}

// matchFn is a lowered node test: does node n pass this step's test?
type matchFn func(ev *evaluator, n Node) (bool, error)

// loweredStep is one location step with its axis resolved (including the
// text()-selects-self rewrite), its node test lowered to a matcher, and
// its predicates lowered to programs.
type loweredStep struct {
	axis           axisKind
	fromDescendant bool
	match          matchFn
	preds          []progFn
}

func lowerPath(x pathExpr) progFn {
	var filter progFn
	if x.filter != nil {
		filter = lowerExpr(x.filter)
	}
	absolute := x.absolute
	steps := make([]loweredStep, len(x.steps))
	for i, st := range x.steps {
		steps[i] = lowerStep(st)
	}
	return func(ev *evaluator, ctx evalPos) (Value, error) {
		var current NodeSet
		switch {
		case filter != nil:
			v, err := filter(ev, ctx)
			if err != nil {
				return nil, err
			}
			ns, ok := v.(NodeSet)
			if !ok {
				return nil, fmt.Errorf("path rooted at %T, not a node-set", v)
			}
			current = ns
		case absolute:
			current = NodeSet{{El: ev.docNode()}}
		default:
			current = NodeSet{ctx.node}
		}
		for i := range steps {
			next, err := applyLoweredStep(ev, current, &steps[i])
			if err != nil {
				return nil, err
			}
			current = next
		}
		return current, nil
	}
}

func lowerStep(st step) loweredStep {
	axis := st.axis
	// text() selects the character data of the step's context node (see
	// applyStep); resolve that axis rewrite once at lowering time.
	if st.test.nodeType == "text" {
		axis = axisSelf
	}
	return loweredStep{
		axis:           axis,
		fromDescendant: st.fromDescendant,
		match:          lowerTest(axis, st.test),
		preds:          lowerPreds(st.preds),
	}
}

func lowerPreds(preds []expr) []progFn {
	if len(preds) == 0 {
		return nil
	}
	out := make([]progFn, len(preds))
	for i, p := range preds {
		out[i] = lowerExpr(p)
	}
	return out
}

// lowerTest lowers a node test against its (rewritten) axis into a
// matcher closure, mirroring evaluator.matchTest case by case.
func lowerTest(axis axisKind, t nodeTest) matchFn {
	switch t.nodeType {
	case "node":
		return func(*evaluator, Node) (bool, error) { return true, nil }
	case "text":
		return func(_ *evaluator, n Node) (bool, error) {
			return !n.IsAttr() && n.El.Text != "", nil
		}
	}
	wantAttr := axis == axisAttribute
	prefix := t.prefix
	local := t.local
	anyName := t.anyName
	return func(ev *evaluator, n Node) (bool, error) {
		if wantAttr != n.IsAttr() {
			return false, nil
		}
		name := n.Name()
		if name.Local == "" {
			// The virtual document node never matches a name test.
			return false, nil
		}
		if anyName {
			if prefix == "" {
				return true, nil
			}
			uri, ok := ev.env.Namespaces[prefix]
			if !ok {
				return false, fmt.Errorf("unbound namespace prefix %q", prefix)
			}
			return name.Space == uri, nil
		}
		if name.Local != local {
			return false, nil
		}
		if prefix == "" {
			// Deviation (documented): unprefixed matches any namespace.
			return true, nil
		}
		uri, ok := ev.env.Namespaces[prefix]
		if !ok {
			return false, fmt.Errorf("unbound namespace prefix %q", prefix)
		}
		return name.Space == uri, nil
	}
}

func applyLoweredStep(ev *evaluator, input NodeSet, st *loweredStep) (NodeSet, error) {
	var out NodeSet
	seen := map[Node]bool{}
	for _, ctxNode := range input {
		bases := NodeSet{ctxNode}
		if st.fromDescendant {
			bases = descendantOrSelf(ctxNode)
		}
		for _, base := range bases {
			raw, err := axisNodes(base, st.axis)
			if err != nil {
				return nil, err
			}
			cands := raw[:0]
			for _, n := range raw {
				ok, err := st.match(ev, n)
				if err != nil {
					return nil, err
				}
				if ok {
					cands = append(cands, n)
				}
			}
			// Predicates apply per context node with proximity positions.
			for _, pred := range st.preds {
				cands, err = applyPredicateProg(ev, cands, pred)
				if err != nil {
					return nil, err
				}
			}
			for _, n := range cands {
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	return out, nil
}

func applyPredicateProg(ev *evaluator, cands NodeSet, pred progFn) (NodeSet, error) {
	var out NodeSet
	size := len(cands)
	for i, n := range cands {
		v, err := pred(ev, evalPos{node: n, pos: i + 1, size: size})
		if err != nil {
			return nil, err
		}
		keep := false
		if num, ok := v.(Number); ok {
			keep = float64(i+1) == float64(num)
		} else {
			keep = v.Bool()
		}
		if keep {
			out = append(out, n)
		}
	}
	return out, nil
}
