// Package xpath implements the XPath 1.0 subset that WS-Policy4MASC
// monitoring policies and wsBus routing rules evaluate against SOAP
// message headers and payloads (see paper §3.1: "simple rules expressed
// as a regular expression or XPath query against the header or the
// payload of the message").
//
// Supported: location paths with child/attribute/descendant/
// descendant-or-self/self/parent axes (plus the abbreviated @, //, ., ..
// forms), name and node()/text() tests, positional and boolean
// predicates, the boolean/equality/relational/arithmetic/union operator
// set, variables ($var), and the core function library used by policies
// (count, position, last, not, true, false, boolean, number, string,
// contains, starts-with, substring, string-length, concat,
// normalize-space, name, local-name, sum, floor, ceiling, round).
//
// One deliberate deviation from XPath 1.0: an unprefixed name test
// matches elements of that local name in ANY namespace. Policy authors
// work against SOAP payloads whose namespaces vary per service; this
// matches how the paper's examples reference payload fields
// ("the CustomerID of PurchaseOrder message") without prefix ceremony.
// Prefixed name tests resolve through the context namespace map and
// match exactly.
package xpath

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/masc-project/masc/internal/xmltree"
)

// Node is a node in the XPath data model: either an element or an
// attribute. For an attribute node, El is the owning element and Attr
// points at the attribute.
type Node struct {
	El   *xmltree.Element
	Attr *xmltree.Attr
}

// IsAttr reports whether the node is an attribute node.
func (n Node) IsAttr() bool { return n.Attr != nil }

// StringValue returns the XPath string-value of the node.
func (n Node) StringValue() string {
	if n.Attr != nil {
		return n.Attr.Value
	}
	return n.El.DeepText()
}

// Name returns the node's expanded name.
func (n Node) Name() xmltree.Name {
	if n.Attr != nil {
		return n.Attr.Name
	}
	return n.El.Name
}

// Value is the result of evaluating an expression: one of NodeSet,
// Bool, Number, or String.
type Value interface {
	// Bool converts the value to a boolean per XPath 1.0 rules.
	Bool() bool
	// Number converts the value to a float64 per XPath 1.0 rules.
	Number() float64
	// String converts the value to a string per XPath 1.0 rules.
	String() string
}

// NodeSet is an ordered set of nodes (document order, no duplicates).
type NodeSet []Node

// Bool implements Value: a node-set is true iff non-empty.
func (s NodeSet) Bool() bool { return len(s) > 0 }

// Number implements Value: the number value of the first node.
func (s NodeSet) Number() float64 {
	return stringToNumber(s.String())
}

// String implements Value: the string-value of the first node, or "".
func (s NodeSet) String() string {
	if len(s) == 0 {
		return ""
	}
	return s[0].StringValue()
}

// Bool is an XPath boolean value.
type Bool bool

// Bool implements Value.
func (b Bool) Bool() bool { return bool(b) }

// Number implements Value.
func (b Bool) Number() float64 {
	if b {
		return 1
	}
	return 0
}

// String implements Value.
func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Number is an XPath number value.
type Number float64

// Bool implements Value: true unless zero or NaN.
func (n Number) Bool() bool {
	f := float64(n)
	return f != 0 && !math.IsNaN(f)
}

// Number implements Value.
func (n Number) Number() float64 { return float64(n) }

// String implements Value.
func (n Number) String() string {
	f := float64(n)
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e15:
		return strconv.FormatInt(int64(f), 10)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// String is an XPath string value.
type String string

// Bool implements Value: true iff non-empty.
func (s String) Bool() bool { return len(s) > 0 }

// Number implements Value.
func (s String) Number() float64 { return stringToNumber(string(s)) }

// String implements Value.
func (s String) String() string { return string(s) }

func stringToNumber(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return math.NaN()
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// Context carries the evaluation environment: namespace prefix bindings
// for prefixed name tests and variable bindings for $var references.
type Context struct {
	// Namespaces maps prefix -> namespace URI.
	Namespaces map[string]string
	// Vars maps variable name -> value.
	Vars map[string]Value
}

// Compiled is a parsed, reusable XPath expression. Compile once (policy
// load time), evaluate per message — this is the "object representation
// of policies" optimization the paper plans for the .NET wsBus.
type Compiled struct {
	src  string
	expr expr
}

// Source returns the original expression text.
func (c *Compiled) Source() string { return c.src }

// Compile parses an XPath expression.
func Compile(src string) (*Compiled, error) {
	p := newParser(src)
	e, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("xpath: compile %q: %w", src, err)
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("xpath: compile %q: trailing input at %q", src, p.peek().text)
	}
	return &Compiled{src: src, expr: e}, nil
}

// MustCompile is Compile that panics on error; for static expressions.
func MustCompile(src string) *Compiled {
	c, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval evaluates the expression with root as both the context node and
// the document root, using an empty Context.
func (c *Compiled) Eval(root *xmltree.Element) (Value, error) {
	return c.EvalContext(root, Context{})
}

// EvalContext evaluates the expression against root with the given
// environment.
func (c *Compiled) EvalContext(root *xmltree.Element, env Context) (Value, error) {
	ev := &evaluator{env: env, root: root}
	return ev.eval(c.expr, evalPos{node: Node{El: root}, pos: 1, size: 1})
}

// EvalBool is a convenience wrapper returning the boolean value.
func (c *Compiled) EvalBool(root *xmltree.Element, env Context) (bool, error) {
	v, err := c.EvalContext(root, env)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

// EvalString is a convenience wrapper returning the string value.
func (c *Compiled) EvalString(root *xmltree.Element, env Context) (string, error) {
	v, err := c.EvalContext(root, env)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// EvalNumber is a convenience wrapper returning the numeric value.
func (c *Compiled) EvalNumber(root *xmltree.Element, env Context) (float64, error) {
	v, err := c.EvalContext(root, env)
	if err != nil {
		return 0, err
	}
	return v.Number(), nil
}

// EvalNodes evaluates and returns the node-set result, or an error if
// the expression does not yield a node-set.
func (c *Compiled) EvalNodes(root *xmltree.Element, env Context) (NodeSet, error) {
	v, err := c.EvalContext(root, env)
	if err != nil {
		return nil, err
	}
	ns, ok := v.(NodeSet)
	if !ok {
		return nil, fmt.Errorf("xpath: %q evaluates to %T, not a node-set", c.src, v)
	}
	return ns, nil
}
