package xpath

import (
	"fmt"
)

// --- AST ---

type expr interface{ isExpr() }

type binaryExpr struct {
	op       string // "or","and","=","!=","<","<=",">",">=","+","-","*","div","mod"
	lhs, rhs expr
}

type negExpr struct{ operand expr }

type unionExpr struct{ parts []expr }

type literalExpr struct{ s string }

type numberExpr struct{ f float64 }

type varExpr struct{ name string }

type funcExpr struct {
	name string
	args []expr
}

// pathExpr is a location path, optionally rooted at a filter expression
// (e.g. a function call returning a node-set).
type pathExpr struct {
	absolute bool
	filter   expr // optional; when set, steps apply to its result
	steps    []step
}

// filterExpr is a primary expression with predicates applied.
type filterExpr struct {
	primary expr
	preds   []expr
}

type axisKind int

const (
	axisChild axisKind = iota + 1
	axisAttribute
	axisDescendant
	axisDescendantOrSelf
	axisSelf
	axisParent
)

type nodeTest struct {
	anyName  bool   // "*" or "prefix:*" (prefix set)
	nodeType string // "node" or "text"; empty for name tests
	prefix   string
	local    string
}

type step struct {
	axis axisKind
	test nodeTest
	// fromDescendant marks a step preceded by "//": expand
	// descendant-or-self::node() before applying the step axis.
	fromDescendant bool
	preds          []expr
}

func (binaryExpr) isExpr()  {}
func (negExpr) isExpr()     {}
func (unionExpr) isExpr()   {}
func (literalExpr) isExpr() {}
func (numberExpr) isExpr()  {}
func (varExpr) isExpr()     {}
func (funcExpr) isExpr()    {}
func (pathExpr) isExpr()    {}
func (filterExpr) isExpr()  {}

// --- Parser ---

type parser struct {
	toks []token
	i    int
	err  error
}

func newParser(src string) *parser {
	toks, err := lex(src)
	if err != nil {
		return &parser{toks: []token{{kind: tokEOF}}, err: err}
	}
	return &parser{toks: toks}
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return token{kind: tokEOF}
}
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("expected %s at position %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) parseExpr() (expr, error) {
	if p.err != nil {
		return nil, p.err
	}
	return p.parseOr()
}

func (p *parser) parseOr() (expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokName && p.peek().text == "or" {
		p.next()
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = binaryExpr{op: "or", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAnd() (expr, error) {
	lhs, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokName && p.peek().text == "and" {
		p.next()
		rhs, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		lhs = binaryExpr{op: "and", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseEquality() (expr, error) {
	lhs, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokEq && k != tokNeq {
			return lhs, nil
		}
		op := p.next().text
		rhs, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		lhs = binaryExpr{op: op, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) parseRelational() (expr, error) {
	lhs, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokLt && k != tokLe && k != tokGt && k != tokGe {
			return lhs, nil
		}
		op := p.next().text
		rhs, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		lhs = binaryExpr{op: op, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) parseAdditive() (expr, error) {
	lhs, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tokPlus && k != tokMinus {
			return lhs, nil
		}
		op := p.next().text
		rhs, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		lhs = binaryExpr{op: op, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) parseMultiplicative() (expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		switch {
		case t.kind == tokStar:
			op = "*"
		case t.kind == tokName && (t.text == "div" || t.text == "mod"):
			op = t.text
		default:
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = binaryExpr{op: op, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) parseUnary() (expr, error) {
	neg := false
	for p.peek().kind == tokMinus {
		p.next()
		neg = !neg
	}
	e, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	if neg {
		return negExpr{operand: e}, nil
	}
	return e, nil
}

func (p *parser) parseUnion() (expr, error) {
	first, err := p.parsePathExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokPipe {
		return first, nil
	}
	parts := []expr{first}
	for p.peek().kind == tokPipe {
		p.next()
		e, err := p.parsePathExpr()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	return unionExpr{parts: parts}, nil
}

// parsePathExpr handles LocationPath | FilterExpr (('/'|'//') RelativePath)?
func (p *parser) parsePathExpr() (expr, error) {
	t := p.peek()

	// Primary expressions that can root a path: literal, number, var,
	// '(' expr ')', or a function call (name followed by '(' — but NOT
	// node-type tests node()/text(), which belong to location paths).
	isPrimary := false
	switch t.kind {
	case tokLiteral, tokNumber, tokDollar, tokLParen:
		isPrimary = true
	case tokName:
		if p.peek2().kind == tokLParen && t.text != "node" && t.text != "text" {
			isPrimary = true
		}
	}

	if isPrimary {
		prim, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		var preds []expr
		for p.peek().kind == tokLBracket {
			pe, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			preds = append(preds, pe)
		}
		base := expr(prim)
		if len(preds) > 0 {
			base = filterExpr{primary: prim, preds: preds}
		}
		if p.peek().kind == tokSlash || p.peek().kind == tokDblSlash {
			steps, err := p.parseRelativeSteps()
			if err != nil {
				return nil, err
			}
			return pathExpr{filter: base, steps: steps}, nil
		}
		return base, nil
	}

	// Location path.
	var pe pathExpr
	switch t.kind {
	case tokSlash:
		p.next()
		pe.absolute = true
		// Bare "/" selects the root.
		if !p.startsStep() {
			return pe, nil
		}
		steps, err := p.parseStepsAfterSeparator(false)
		if err != nil {
			return nil, err
		}
		pe.steps = steps
	case tokDblSlash:
		p.next()
		pe.absolute = true
		steps, err := p.parseStepsAfterSeparator(true)
		if err != nil {
			return nil, err
		}
		pe.steps = steps
	default:
		if !p.startsStep() {
			return nil, fmt.Errorf("unexpected token %q at position %d", t.text, t.pos)
		}
		steps, err := p.parseStepsAfterSeparator(false)
		if err != nil {
			return nil, err
		}
		pe.steps = steps
	}
	return pe, nil
}

func (p *parser) startsStep() bool {
	switch p.peek().kind {
	case tokName, tokStar, tokAt, tokDot, tokDotDot:
		return true
	}
	return false
}

// parseRelativeSteps parses (('/'|'//') Step)+ after a filter expression.
func (p *parser) parseRelativeSteps() ([]step, error) {
	var steps []step
	for {
		var fromDesc bool
		switch p.peek().kind {
		case tokSlash:
			p.next()
		case tokDblSlash:
			p.next()
			fromDesc = true
		default:
			return steps, nil
		}
		s, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		s.fromDescendant = fromDesc
		steps = append(steps, s)
	}
}

// parseStepsAfterSeparator parses Step (('/'|'//') Step)*, with the first
// step's fromDescendant given.
func (p *parser) parseStepsAfterSeparator(firstFromDesc bool) ([]step, error) {
	first, err := p.parseStep()
	if err != nil {
		return nil, err
	}
	first.fromDescendant = firstFromDesc
	steps := []step{first}
	rest, err := p.parseRelativeSteps()
	if err != nil {
		return nil, err
	}
	return append(steps, rest...), nil
}

func (p *parser) parseStep() (step, error) {
	t := p.peek()
	switch t.kind {
	case tokDot:
		p.next()
		return step{axis: axisSelf, test: nodeTest{nodeType: "node"}}, nil
	case tokDotDot:
		p.next()
		return step{axis: axisParent, test: nodeTest{nodeType: "node"}}, nil
	case tokAt:
		p.next()
		nt, err := p.parseNodeTest()
		if err != nil {
			return step{}, err
		}
		s := step{axis: axisAttribute, test: nt}
		return p.parsePredicates(s)
	case tokName:
		// Explicit axis?
		if p.peek2().kind == tokDblColon {
			axis, ok := axisByName(t.text)
			if !ok {
				return step{}, fmt.Errorf("unsupported axis %q at position %d", t.text, t.pos)
			}
			p.next()
			p.next()
			nt, err := p.parseNodeTest()
			if err != nil {
				return step{}, err
			}
			return p.parsePredicates(step{axis: axis, test: nt})
		}
		nt, err := p.parseNodeTest()
		if err != nil {
			return step{}, err
		}
		return p.parsePredicates(step{axis: axisChild, test: nt})
	case tokStar:
		nt, err := p.parseNodeTest()
		if err != nil {
			return step{}, err
		}
		return p.parsePredicates(step{axis: axisChild, test: nt})
	default:
		return step{}, fmt.Errorf("expected step at position %d, got %q", t.pos, t.text)
	}
}

func axisByName(name string) (axisKind, bool) {
	switch name {
	case "child":
		return axisChild, true
	case "attribute":
		return axisAttribute, true
	case "descendant":
		return axisDescendant, true
	case "descendant-or-self":
		return axisDescendantOrSelf, true
	case "self":
		return axisSelf, true
	case "parent":
		return axisParent, true
	}
	return 0, false
}

func (p *parser) parsePredicates(s step) (step, error) {
	for p.peek().kind == tokLBracket {
		pe, err := p.parsePredicate()
		if err != nil {
			return step{}, err
		}
		s.preds = append(s.preds, pe)
	}
	return s, nil
}

func (p *parser) parsePredicate() (expr, error) {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBracket, "']'"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parseNodeTest() (nodeTest, error) {
	t := p.next()
	switch t.kind {
	case tokStar:
		return nodeTest{anyName: true}, nil
	case tokName:
		// node() / text()
		if p.peek().kind == tokLParen && (t.text == "node" || t.text == "text") {
			p.next()
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nodeTest{}, err
			}
			return nodeTest{nodeType: t.text}, nil
		}
		if p.peek().kind == tokColon {
			p.next()
			nt := p.next()
			switch nt.kind {
			case tokStar:
				return nodeTest{anyName: true, prefix: t.text}, nil
			case tokName:
				return nodeTest{prefix: t.text, local: nt.text}, nil
			default:
				return nodeTest{}, fmt.Errorf("expected name after %q: at position %d", t.text, nt.pos)
			}
		}
		return nodeTest{local: t.text}, nil
	default:
		return nodeTest{}, fmt.Errorf("expected node test at position %d, got %q", t.pos, t.text)
	}
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokLiteral:
		return literalExpr{s: t.text}, nil
	case tokNumber:
		return numberExpr{f: t.num}, nil
	case tokDollar:
		name, err := p.expect(tokName, "variable name")
		if err != nil {
			return nil, err
		}
		return varExpr{name: name.text}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		fe := funcExpr{name: t.text}
		if p.peek().kind == tokRParen {
			p.next()
			return fe, nil
		}
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fe.args = append(fe.args, arg)
			switch p.peek().kind {
			case tokComma:
				p.next()
			case tokRParen:
				p.next()
				return fe, nil
			default:
				return nil, fmt.Errorf("expected ',' or ')' in %s() at position %d", t.text, p.peek().pos)
			}
		}
	default:
		return nil, fmt.Errorf("unexpected token %q at position %d", t.text, t.pos)
	}
}
