package xpath

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/masc-project/masc/internal/xmltree"
)

// equivalenceExprs is the table of expressions exercised against both
// evaluators. It covers every AST node kind and every axis the parser
// can produce, plus the function library and the documented deviations
// (unprefixed-name-matches-any-namespace, text()-selects-self).
var equivalenceExprs = []string{
	// Literals, numbers, variables, negation.
	"'hello'",
	"42",
	"-3.5",
	"-(-5)",
	"$amount",
	"$flag",
	// Boolean and relational operators (incl. short circuits).
	"true() or unknown-fn()",
	"false() and unknown-fn()",
	"1 < 2 or 3 > 4",
	"//Amount = 15000",
	"//Amount != 15000",
	"//Amount >= 10000 and //Country = 'Japan'",
	"//Item/Qty > 4",
	"//Item/Price < 50",
	"$flag = //Items/Item",
	// Arithmetic.
	"1 + 2 * (3 div 4) mod 5",
	"//Amount - 5000",
	"sum(//Price) div count(//Price)",
	// Unions.
	"//Qty | //Price",
	"//Item | //Item",
	// Paths: absolute, relative, //, attributes, parent, self, wildcards.
	"/Envelope/Body/PurchaseOrder/CustomerID",
	"//PurchaseOrder/@id",
	"//Item/@sku",
	"//Item[1]/Qty",
	"//Item[3]",
	"//Item[last()]",
	"//Item[position() > 1]",
	"//Item[Qty > 1][Price < 200]",
	"//Items/*",
	"//@*",
	"//Item/..",
	"//Item/.",
	"//CustomerID/text()",
	"//node()",
	"descendant::Item",
	"/Envelope//Price",
	"//Item[@sku='B2']/Price",
	// Prefixed name tests (resolve through env namespaces).
	"//scm:Amount",
	"//scm:*",
	// Filter expressions with predicates.
	"(//Item)[2]",
	"(//Qty | //Price)[4]",
	// Function library.
	"count(//Item)",
	"not(//Missing)",
	"boolean(//Item)",
	"number(//Amount)",
	"string(//Country)",
	"concat(//CustomerID, '-', //Country)",
	"contains(//Profile, 'corp')",
	"starts-with(//CustomerID, 'C')",
	"substring(//CustomerID, 2, 2)",
	"substring-before('a=b', '=')",
	"substring-after('a=b', '=')",
	"string-length(//CustomerID)",
	"normalize-space('  a   b ')",
	"name(//Item)",
	"local-name(//PurchaseOrder/@id)",
	"floor(3.7)",
	"ceiling(3.2)",
	"round(2.5)",
	"translate('abc', 'abc', 'xyz')",
	"matches(//CustomerID, '^C[0-9]+$')",
	// Runtime errors must match too.
	"unknown-fn(1)",
	"$undefined",
	"//unbound:Thing",
	"count(1)",
	"1[2]",
	"concat('a')",
	"matches('a', '[')",
}

func equivEnv() Context {
	return Context{
		Namespaces: map[string]string{"scm": "urn:scm"},
		Vars: map[string]Value{
			"amount": Number(15000),
			"flag":   Bool(true),
		},
	}
}

// assertEquivalent checks that tree evaluation and the lowered program
// agree on value (or on error text) for one expression.
func assertEquivalent(t *testing.T, root *xmltree.Element, env Context, src string) {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	p := c.Program()
	tv, terr := c.EvalContext(root, env)
	pv, perr := p.EvalContext(root, env)
	switch {
	case terr != nil || perr != nil:
		tmsg, pmsg := "", ""
		if terr != nil {
			tmsg = terr.Error()
		}
		if perr != nil {
			pmsg = perr.Error()
		}
		if tmsg != pmsg {
			t.Errorf("%q: tree err=%q, program err=%q", src, tmsg, pmsg)
		}
	case !reflect.DeepEqual(normalizeNaN(tv), normalizeNaN(pv)):
		t.Errorf("%q: tree=%#v, program=%#v", src, tv, pv)
	}
}

// normalizeNaN maps NaN numbers to a sentinel so DeepEqual can compare
// them (NaN != NaN).
func normalizeNaN(v Value) Value {
	if n, ok := v.(Number); ok && math.IsNaN(float64(n)) {
		return String("NaN-sentinel")
	}
	return v
}

func TestProgramEquivalence(t *testing.T) {
	root := doc(t)
	env := equivEnv()
	for _, src := range equivalenceExprs {
		assertEquivalent(t, root, env, src)
	}
}

func TestProgramEvalWrappers(t *testing.T) {
	root := doc(t)
	p := MustCompile("count(//Item)").Program()
	if got := p.Source(); got != "count(//Item)" {
		t.Fatalf("Source() = %q", got)
	}
	if n, err := p.EvalNumber(root, Context{}); err != nil || n != 3 {
		t.Fatalf("EvalNumber = %v, %v", n, err)
	}
	if b, err := p.EvalBool(root, Context{}); err != nil || !b {
		t.Fatalf("EvalBool = %v, %v", b, err)
	}
	if s, err := p.EvalString(root, Context{}); err != nil || s != "3" {
		t.Fatalf("EvalString = %q, %v", s, err)
	}
	if _, err := p.EvalNodes(root, Context{}); err == nil {
		t.Fatal("EvalNodes on a number should error")
	}
	ns, err := MustCompile("//Item").Program().EvalNodes(root, Context{})
	if err != nil || len(ns) != 3 {
		t.Fatalf("EvalNodes = %d nodes, %v", len(ns), err)
	}
	if v, err := MustCompile("1").Program().Eval(root); err != nil || v.Number() != 1 {
		t.Fatalf("Eval = %v, %v", v, err)
	}
}

// TestProgramEquivalenceGenerated quick-checks equivalence over
// randomly generated expressions: a seeded generator assembles
// expressions from the grammar, and both evaluators must agree on every
// one (value or error text).
func TestProgramEquivalenceGenerated(t *testing.T) {
	root := doc(t)
	env := equivEnv()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		src := genExpr(rng, 3)
		c, err := Compile(src)
		if err != nil {
			t.Fatalf("generated expression %q does not compile: %v", src, err)
		}
		p := c.Program()
		tv, terr := c.EvalContext(root, env)
		pv, perr := p.EvalContext(root, env)
		switch {
		case terr != nil || perr != nil:
			tmsg, pmsg := "", ""
			if terr != nil {
				tmsg = terr.Error()
			}
			if perr != nil {
				pmsg = perr.Error()
			}
			if tmsg != pmsg {
				t.Errorf("%q: tree err=%q, program err=%q", src, tmsg, pmsg)
			}
		case !reflect.DeepEqual(normalizeNaN(tv), normalizeNaN(pv)):
			t.Errorf("%q: tree=%#v, program=%#v", src, tv, pv)
		}
	}
}

// genExpr produces a random well-formed XPath expression of bounded
// depth from the supported grammar.
func genExpr(rng *rand.Rand, depth int) string {
	atoms := []string{
		"1", "2.5", "0", "'x'", "'Japan'", "$amount", "$flag",
		"//Amount", "//Item/Qty", "//Item/@sku", "//Country",
		"/Envelope/Body", "//Missing", "//scm:Amount", "position()",
		"last()", "count(//Item)", "sum(//Price)", "string(//Profile)",
		"//Item[1]", "//Item[Qty > 1]", "(//Qty | //Price)[2]",
		"//CustomerID/text()", "//node()", "descendant::Item", "//Item/..",
	}
	if depth <= 0 {
		return atoms[rng.Intn(len(atoms))]
	}
	switch rng.Intn(8) {
	case 0:
		return atoms[rng.Intn(len(atoms))]
	case 1:
		ops := []string{"or", "and", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "div", "mod"}
		return "(" + genExpr(rng, depth-1) + " " + ops[rng.Intn(len(ops))] + " " + genExpr(rng, depth-1) + ")"
	case 2:
		return "not(" + genExpr(rng, depth-1) + ")"
	case 3:
		return "-(" + genExpr(rng, depth-1) + ")"
	case 4:
		return "(//Qty | //Price | //Missing)"
	case 5:
		return "concat('p-', " + genExpr(rng, depth-1) + ")"
	case 6:
		return "boolean(" + genExpr(rng, depth-1) + ")"
	default:
		return "string-length(" + genExpr(rng, depth-1) + ")"
	}
}

// FuzzProgramEquivalence fuzzes arbitrary source text: whatever Compile
// accepts must evaluate identically (value or error) through the tree
// evaluator and the lowered program.
func FuzzProgramEquivalence(f *testing.F) {
	for _, s := range equivalenceExprs {
		f.Add(s)
	}
	root := xmltree.MustParseString(`<r a="1"><a><b c="d">x</b></a><y>zebra</y><y>7</y></r>`)
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Compile(src)
		if err != nil {
			return
		}
		env := Context{
			Namespaces: map[string]string{"scm": "urn:scm"},
			Vars:       map[string]Value{"var": Bool(false), "amount": Number(1)},
		}
		p := c.Program()
		tv, terr := c.EvalContext(root, env)
		pv, perr := p.EvalContext(root, env)
		switch {
		case (terr == nil) != (perr == nil):
			t.Fatalf("%q: tree err=%v, program err=%v", src, terr, perr)
		case terr != nil:
			if terr.Error() != perr.Error() {
				t.Fatalf("%q: tree err=%q, program err=%q", src, terr, perr)
			}
		case !reflect.DeepEqual(normalizeNaN(tv), normalizeNaN(pv)):
			t.Fatalf("%q: tree=%#v, program=%#v", src, tv, pv)
		}
	})
}
