package xpath

import (
	"testing"

	"github.com/masc-project/masc/internal/xmltree"
)

// FuzzCompileEval checks that Compile never panics and that anything
// it accepts evaluates (or errors) without panicking.
func FuzzCompileEval(f *testing.F) {
	seeds := []string{
		"//a/b[@c='d']",
		"count(//x) > 3 and starts-with(//y, 'z')",
		"1 + 2 * (3 div 4) mod 5",
		"//a | //b | //c",
		"substring(//a, 2, 3)",
		"not($var)",
		"-(-5)",
		"/",
		"..",
		"@*",
		"a[b[c[d]]]",
		"((((1))))",
		"'unterminated",
		"]][[",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc := xmltree.MustParseString(`<r><a><b c="d">x</b></a><y>zebra</y></r>`)
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Compile(src)
		if err != nil {
			return
		}
		env := Context{Vars: map[string]Value{"var": Bool(false)}}
		v, err := c.EvalContext(doc, env)
		if err != nil {
			return
		}
		// Conversions must not panic either.
		_ = v.Bool()
		_ = v.Number()
		_ = v.String()
	})
}
