package xpath_test

import (
	"fmt"

	"github.com/masc-project/masc/internal/xmltree"
	"github.com/masc-project/masc/internal/xpath"
)

// ExampleCompile evaluates a policy-style condition over a message.
func ExampleCompile() {
	msg := xmltree.MustParseString(`
<placeOrder xmlns="urn:trade">
  <Amount>15000</Amount>
  <Profile>corporate</Profile>
</placeOrder>`)

	cond, err := xpath.Compile("number(//Amount) > 10000 or //Profile = 'corporate'")
	if err != nil {
		fmt.Println("compile:", err)
		return
	}
	ok, err := cond.EvalBool(msg, xpath.Context{})
	fmt.Println(ok, err)
	// Output:
	// true <nil>
}

// ExampleCompiled_EvalContext shows variable bindings in conditions.
func ExampleCompiled_EvalContext() {
	doc := xmltree.MustParseString(`<order><total>120</total></order>`)
	cond := xpath.MustCompile("number(//total) > $threshold")
	v, err := cond.EvalContext(doc, xpath.Context{
		Vars: map[string]xpath.Value{"threshold": xpath.Number(100)},
	})
	fmt.Println(v.Bool(), err)
	// Output:
	// true <nil>
}
