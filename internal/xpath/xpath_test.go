package xpath

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"github.com/masc-project/masc/internal/xmltree"
)

const orderDoc = `
<Envelope xmlns="urn:env">
  <Header>
    <MessageID>msg-1</MessageID>
    <RelatesTo>proc-7</RelatesTo>
  </Header>
  <Body>
    <PurchaseOrder xmlns="urn:scm" id="po-1" currency="AUD">
      <CustomerID>C042</CustomerID>
      <Amount>15000</Amount>
      <Country>Japan</Country>
      <Items>
        <Item sku="A1"><Qty>2</Qty><Price>100</Price></Item>
        <Item sku="B2"><Qty>1</Qty><Price>250.5</Price></Item>
        <Item sku="C3"><Qty>5</Qty><Price>10</Price></Item>
      </Items>
      <Profile>corporate</Profile>
    </PurchaseOrder>
  </Body>
</Envelope>`

func doc(t *testing.T) *xmltree.Element {
	t.Helper()
	e, err := xmltree.ParseString(orderDoc)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func evalStr(t *testing.T, root *xmltree.Element, src string) string {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	s, err := c.EvalString(root, Context{})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return s
}

func evalBoolT(t *testing.T, root *xmltree.Element, src string) bool {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	b, err := c.EvalBool(root, Context{})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return b
}

func evalNum(t *testing.T, root *xmltree.Element, src string) float64 {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	n, err := c.EvalNumber(root, Context{})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return n
}

func TestAbsolutePaths(t *testing.T) {
	root := doc(t)
	tests := []struct {
		src, want string
	}{
		{"/Envelope/Header/MessageID", "msg-1"},
		{"/Envelope/Body/PurchaseOrder/CustomerID", "C042"},
		{"//CustomerID", "C042"},
		{"//Item/Qty", "2"}, // first in document order
		{"/Envelope/Body/PurchaseOrder/@id", "po-1"},
		{"//Item[2]/@sku", "B2"},
		{"//Item[last()]/Price", "10"},
		{"//Item[position()=2]/Price", "250.5"},
		{"//Item[Qty > 1][2]/@sku", "C3"},
		{"//Item[@sku='B2']/Qty", "1"},
		{"/Envelope/Body/PurchaseOrder/Items/..", ""}, // parent: PurchaseOrder string value starts with C042...
	}
	for _, tt := range tests[:10] {
		if got := evalStr(t, root, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParentAndSelf(t *testing.T) {
	root := doc(t)
	c := MustCompile("//Items/../CustomerID")
	if got, _ := c.EvalString(root, Context{}); got != "C042" {
		t.Fatalf("parent navigation = %q", got)
	}
	c2 := MustCompile("//CustomerID/.")
	if got, _ := c2.EvalString(root, Context{}); got != "C042" {
		t.Fatalf("self navigation = %q", got)
	}
}

func TestExplicitAxes(t *testing.T) {
	root := doc(t)
	tests := []struct {
		src  string
		want float64
	}{
		{"count(/Envelope/descendant::Item)", 3},
		{"count(//Items/child::Item)", 3},
		{"count(//Item[1]/attribute::sku)", 1},
		{"count(/descendant-or-self::Envelope)", 1},
		{"count(//Qty/parent::Item)", 3},
		{"count(//Qty/self::Qty)", 3},
	}
	for _, tt := range tests {
		if got := evalNum(t, root, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestWildcardAndNodeTests(t *testing.T) {
	root := doc(t)
	if got := evalNum(t, root, "count(//Items/*)"); got != 3 {
		t.Fatalf("count(//Items/*) = %v", got)
	}
	if got := evalNum(t, root, "count(/Envelope/*)"); got != 2 {
		t.Fatalf("count(/Envelope/*) = %v", got)
	}
	if got := evalNum(t, root, "count(//Item[1]/node())"); got != 2 {
		t.Fatalf("count(//Item[1]/node()) = %v", got)
	}
	// text() matches elements carrying character data (documented model).
	if got := evalNum(t, root, "count(//Item[1]/*/text())"); got != 2 {
		t.Fatalf("count text() = %v", got)
	}
}

func TestNamespacePrefixes(t *testing.T) {
	root := doc(t)
	env := Context{Namespaces: map[string]string{
		"e": "urn:env",
		"s": "urn:scm",
	}}
	c := MustCompile("/e:Envelope/e:Body/s:PurchaseOrder/s:Amount")
	got, err := c.EvalString(root, env)
	if err != nil {
		t.Fatal(err)
	}
	if got != "15000" {
		t.Fatalf("prefixed path = %q", got)
	}

	// Wrong namespace yields no nodes.
	c2 := MustCompile("/s:Envelope")
	ns, err := c2.EvalNodes(root, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Fatal("matched element in wrong namespace")
	}

	// Unbound prefix is an error.
	c3 := MustCompile("/x:Envelope")
	if _, err := c3.EvalContext(root, env); err == nil {
		t.Fatal("unbound prefix did not error")
	}

	// prefix:* matches any local name in that namespace.
	c4 := MustCompile("count(//s:*)")
	v, err := c4.EvalContext(root, env)
	if err != nil {
		t.Fatal(err)
	}
	// PurchaseOrder, CustomerID, Amount, Country, Items, 3×Item, 3×Qty,
	// 3×Price, Profile = 15 elements in urn:scm.
	if v.Number() != 15 {
		t.Fatalf("count(//s:*) = %v, want 15", v.Number())
	}
}

func TestComparisons(t *testing.T) {
	root := doc(t)
	tests := []struct {
		src  string
		want bool
	}{
		{"//Amount > 10000", true},
		{"//Amount > 20000", false},
		{"//Amount = 15000", true},
		{"//Amount != 15000", false},
		{"//Profile = 'corporate'", true},
		{"//Profile = 'personal'", false},
		{"//Country = 'Japan' and //Amount >= 15000", true},
		{"//Country = 'USA' or //Amount >= 15000", true},
		{"//Country = 'USA' or //Amount > 15000", false},
		{"//Item/Qty > 4", true},   // existential: some Qty > 4
		{"//Item/Qty > 10", false}, // none
		{"not(//Missing)", true},
		{"count(//Item) = 3", true},
		{"3 < 4", true},
		{"'abc' = 'abc'", true},
		{"true() != false()", true},
	}
	for _, tt := range tests {
		if got := evalBoolT(t, root, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	root := doc(t)
	tests := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 div 4", 2.5},
		{"10 mod 3", 1},
		{"-5 + 2", -3},
		{"- - 5", 5},
		{"sum(//Price)", 360.5},
		{"//Amount + 1", 15001},
		{"floor(2.7)", 2},
		{"ceiling(2.1)", 3},
		{"round(2.5)", 3},
	}
	for _, tt := range tests {
		if got := evalNum(t, root, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
	if got := evalNum(t, root, "number('oops')"); !math.IsNaN(got) {
		t.Errorf("number('oops') = %v, want NaN", got)
	}
}

func TestStringFunctions(t *testing.T) {
	root := doc(t)
	tests := []struct {
		src  string
		want string
	}{
		{"concat('a','b','c')", "abc"},
		{"substring('12345', 2, 3)", "234"},
		{"substring('12345', 2)", "2345"},
		{"normalize-space('  a   b ')", "a b"},
		{"string(//Amount)", "15000"},
		{"local-name(//PurchaseOrder)", "PurchaseOrder"},
		{"name(/*)", "Envelope"},
		{"string(123)", "123"},
		{"string(1.5)", "1.5"},
		{"string(true())", "true"},
	}
	for _, tt := range tests {
		if got := evalStr(t, root, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
	boolTests := []struct {
		src  string
		want bool
	}{
		{"contains(//CustomerID, '04')", true},
		{"starts-with(//CustomerID, 'C')", true},
		{"starts-with(//CustomerID, 'X')", false},
		{"string-length(//CustomerID) = 4", true},
		{"matches(//CustomerID, '^C[0-9]+$')", true},
		{"matches(//Country, 'Jap|Chin')", true},
		{"matches(//Country, '^USA$')", false},
	}
	for _, tt := range boolTests {
		if got := evalBoolT(t, root, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestMatchesBadRegexErrors(t *testing.T) {
	root := doc(t)
	c := MustCompile("matches(//Country, '[')")
	if _, err := c.EvalContext(root, Context{}); err == nil {
		t.Fatal("bad regex did not error")
	}
}

func TestVariables(t *testing.T) {
	root := doc(t)
	env := Context{Vars: map[string]Value{
		"threshold": Number(10000),
		"who":       String("corporate"),
	}}
	c := MustCompile("//Amount > $threshold and //Profile = $who")
	got, err := c.EvalBool(root, env)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("variable comparison failed")
	}

	c2 := MustCompile("$undefined")
	if _, err := c2.EvalContext(root, env); err == nil {
		t.Fatal("undefined variable did not error")
	}
}

func TestUnion(t *testing.T) {
	root := doc(t)
	if got := evalNum(t, root, "count(//Qty | //Price)"); got != 6 {
		t.Fatalf("union count = %v, want 6", got)
	}
	// Overlap deduplicates.
	if got := evalNum(t, root, "count(//Qty | //Qty)"); got != 3 {
		t.Fatalf("self-union count = %v, want 3", got)
	}
}

func TestFilterExprWithPath(t *testing.T) {
	root := doc(t)
	// Path rooted at a parenthesized node-set expression.
	if got := evalNum(t, root, "count((//Item)[1]/Qty)"); got != 1 {
		t.Fatalf("(//Item)[1]/Qty count = %v", got)
	}
	if got := evalStr(t, root, "(//Item)[2]/@sku"); got != "B2" {
		t.Fatalf("(//Item)[2]/@sku = %q", got)
	}
}

func TestDescendantFromNestedContext(t *testing.T) {
	root := doc(t)
	if got := evalNum(t, root, "count(/Envelope/Body//Qty)"); got != 3 {
		t.Fatalf("nested // count = %v", got)
	}
	if got := evalStr(t, root, "//Items//Price"); got != "100" {
		t.Fatalf("//Items//Price = %q", got)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"//",
		"/Envelope/",
		"foo(",
		"1 +",
		"[x]",
		"@",
		"a b",
		"'unterminated",
		"!x",
		"following-sibling::x", // unsupported axis
		"$",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestFunctionArityErrors(t *testing.T) {
	root := doc(t)
	bad := []string{
		"not()",
		"not(1,2)",
		"contains('a')",
		"concat('a')",
		"position(1)",
		"unknownfn(1)",
	}
	for _, src := range bad {
		c, err := Compile(src)
		if err != nil {
			continue // compile-time rejection also acceptable
		}
		if _, err := c.EvalContext(root, Context{}); err == nil {
			t.Errorf("%q evaluated without error", src)
		}
	}
}

func TestNumberFormatting(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{-3, "-3"},
		{2.5, "2.5"},
		{0, "0"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Infinity"},
		{math.Inf(-1), "-Infinity"},
	}
	for _, tt := range tests {
		if got := Number(tt.in).String(); got != tt.want {
			t.Errorf("Number(%v).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestValueConversionsQuick(t *testing.T) {
	// Property: for any finite float, Number round-trips through its
	// string form when re-parsed by stringToNumber.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		// Limit to values whose decimal form we print exactly.
		if x != math.Trunc(x) || math.Abs(x) >= 1e15 {
			return true
		}
		s := Number(x).String()
		back, err := strconv.ParseFloat(s, 64)
		return err == nil && back == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanConversionsQuick(t *testing.T) {
	// Property: String(s).Bool() is true iff s is non-empty.
	f := func(s string) bool {
		return String(s).Bool() == (len(s) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAttributeExistence(t *testing.T) {
	root := doc(t)
	if !evalBoolT(t, root, "//PurchaseOrder[@currency]") {
		t.Fatal("attribute existence predicate failed")
	}
	if evalBoolT(t, root, "//PurchaseOrder[@missing]") {
		t.Fatal("missing attribute predicate matched")
	}
	if got := evalStr(t, root, "//PurchaseOrder/@currency"); got != "AUD" {
		t.Fatalf("@currency = %q", got)
	}
}

func TestEmptyNodeSetSemantics(t *testing.T) {
	root := doc(t)
	// Comparisons against empty node-sets are false.
	if evalBoolT(t, root, "//Missing = 'x'") {
		t.Fatal("empty = 'x' should be false")
	}
	if evalBoolT(t, root, "//Missing != 'x'") {
		t.Fatal("empty != 'x' should be false (existential)")
	}
	if got := evalStr(t, root, "//Missing"); got != "" {
		t.Fatalf("string(empty) = %q", got)
	}
}

func TestEvalNodesTypeError(t *testing.T) {
	root := doc(t)
	c := MustCompile("1 + 1")
	if _, err := c.EvalNodes(root, Context{}); err == nil {
		t.Fatal("EvalNodes on number did not error")
	}
}

func TestSourceAccessor(t *testing.T) {
	c := MustCompile("//a")
	if c.Source() != "//a" {
		t.Fatalf("Source = %q", c.Source())
	}
}

func TestStringFunctionsExtended(t *testing.T) {
	root := doc(t)
	tests := []struct {
		src, want string
	}{
		{"substring-before('1999/04/01', '/')", "1999"},
		{"substring-before('abc', 'x')", ""},
		{"substring-after('1999/04/01', '/')", "04/01"},
		{"substring-after('abc', 'x')", ""},
		{"translate('bar', 'abc', 'ABC')", "BAr"},
		{"translate('--aaa--', 'a-', 'A')", "AAA"},
		{"substring-before(//CustomerID, '4')", "C0"},
	}
	for _, tt := range tests {
		if got := evalStr(t, root, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestNodeSetComparisonsExistential(t *testing.T) {
	root := doc(t)
	tests := []struct {
		src  string
		want bool
	}{
		// node-set vs node-set: exists a pair satisfying the comparison.
		{"//Item/Qty = //Item/Price", false},
		{"//Qty < //Price", true},  // 2 < 100 etc.
		{"//Price < //Qty", false}, // min price 10, max qty 5 → 10<... wait 10 < 5? no; 10<2 no → false
		{"//Qty != //Qty", true},   // distinct values exist
		{"//Country = //Country", true},
		// node-set vs bool: existence semantics.
		{"//Item = true()", true},
		{"//Missing = true()", false},
		{"//Missing = false()", true},
		// node-set vs number with <=, >=.
		{"//Qty <= 1", true},
		{"//Qty >= 5", true},
		{"5 <= //Qty", true},
		{"1000 < //Price", false},
	}
	for _, tt := range tests {
		if got := evalBoolT(t, root, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalErrorsSurface(t *testing.T) {
	root := doc(t)
	bad := []string{
		"(1 + 2)[1]",       // predicate on non-node-set
		"count(//a | 3)",   // union with non-node-set
		"(1)/x",            // path rooted at number
		"//Item[$missing]", // undefined variable inside predicate
	}
	for _, src := range bad {
		c, err := Compile(src)
		if err != nil {
			continue
		}
		if _, err := c.EvalContext(root, Context{}); err == nil {
			t.Errorf("%q evaluated without error", src)
		}
	}
}

func TestCompiledEvalDefaultContext(t *testing.T) {
	root := doc(t)
	v, err := MustCompile("//Amount").Eval(root)
	if err != nil || v.String() != "15000" {
		t.Fatalf("Eval = %v err=%v", v, err)
	}
}

func TestShortCircuitSkipsErrors(t *testing.T) {
	root := doc(t)
	// The rhs would error (undefined variable), but short-circuiting
	// must prevent its evaluation.
	if !evalBoolT(t, root, "true() or $undefined") {
		t.Fatal("or short-circuit failed")
	}
	if evalBoolT(t, root, "false() and $undefined") {
		t.Fatal("and short-circuit failed")
	}
}
