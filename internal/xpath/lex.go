package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF  tokKind = iota + 1
	tokName         // NCName (possibly later combined with ':' into qname)
	tokNumber
	tokLiteral // quoted string
	tokSlash
	tokDblSlash
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokAt
	tokDot
	tokDotDot
	tokComma
	tokPipe
	tokStar
	tokColon
	tokDblColon
	tokDollar
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokPlus
	tokMinus
)

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int
}

type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("position %d: %s", e.pos, e.msg)
}

// lex tokenizes the whole expression up front; XPath expressions are
// short, so a token slice is simpler than a streaming lexer.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/':
			if i+1 < n && src[i+1] == '/' {
				toks = append(toks, token{kind: tokDblSlash, text: "//", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSlash, text: "/", pos: i})
				i++
			}
		case c == '[':
			toks = append(toks, token{kind: tokLBracket, text: "[", pos: i})
			i++
		case c == ']':
			toks = append(toks, token{kind: tokRBracket, text: "]", pos: i})
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", pos: i})
			i++
		case c == '@':
			toks = append(toks, token{kind: tokAt, text: "@", pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '|':
			toks = append(toks, token{kind: tokPipe, text: "|", pos: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, text: "*", pos: i})
			i++
		case c == '$':
			toks = append(toks, token{kind: tokDollar, text: "$", pos: i})
			i++
		case c == '+':
			toks = append(toks, token{kind: tokPlus, text: "+", pos: i})
			i++
		case c == '-':
			toks = append(toks, token{kind: tokMinus, text: "-", pos: i})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokEq, text: "=", pos: i})
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokNeq, text: "!=", pos: i})
				i += 2
			} else {
				return nil, &lexError{pos: i, msg: "unexpected '!'"}
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokLe, text: "<=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokLt, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{kind: tokGe, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokGt, text: ">", pos: i})
				i++
			}
		case c == ':':
			if i+1 < n && src[i+1] == ':' {
				toks = append(toks, token{kind: tokDblColon, text: "::", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokColon, text: ":", pos: i})
				i++
			}
		case c == '.':
			if i+1 < n && src[i+1] == '.' {
				toks = append(toks, token{kind: tokDotDot, text: "..", pos: i})
				i += 2
			} else if i+1 < n && isDigit(src[i+1]) {
				j := i + 1
				for j < n && isDigit(src[j]) {
					j++
				}
				num, err := parseNum(src[i:j])
				if err != nil {
					return nil, &lexError{pos: i, msg: err.Error()}
				}
				toks = append(toks, token{kind: tokNumber, text: src[i:j], num: num, pos: i})
				i = j
			} else {
				toks = append(toks, token{kind: tokDot, text: ".", pos: i})
				i++
			}
		case c == '\'' || c == '"':
			j := strings.IndexByte(src[i+1:], c)
			if j < 0 {
				return nil, &lexError{pos: i, msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokLiteral, text: src[i+1 : i+1+j], pos: i})
			i += j + 2
		case isDigit(c):
			j := i
			for j < n && isDigit(src[j]) {
				j++
			}
			if j < n && src[j] == '.' {
				j++
				for j < n && isDigit(src[j]) {
					j++
				}
			}
			num, err := parseNum(src[i:j])
			if err != nil {
				return nil, &lexError{pos: i, msg: err.Error()}
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], num: num, pos: i})
			i = j
		case isNameStart(rune(c)):
			j := i + 1
			for j < n && isNameChar(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tokName, text: src[i:j], pos: i})
			i = j
		default:
			return nil, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func parseNum(s string) (float64, error) {
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return f, nil
}
