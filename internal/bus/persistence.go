package bus

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/store"
)

// Store spaces used by the messaging layer.
const (
	// SpaceRetry holds one record per message awaiting (re)delivery.
	SpaceRetry = "retry"
	// SpaceDLQ holds one record per retained dead letter.
	SpaceDLQ = "dlq"
)

// persistedMessage is the durable form of a queuedMessage / DeadLetter:
// the envelope travels as its canonical XML text so the record is
// self-describing and survives schema evolution of the in-memory types.
type persistedMessage struct {
	Endpoint string    `json:"endpoint"`
	Envelope string    `json:"envelope"`
	Attempts int       `json:"attempts"`
	Due      time.Time `json:"due,omitempty"`
	LastErr  string    `json:"lastErr,omitempty"`
	Time     time.Time `json:"time,omitempty"`
}

// persistSeqKey renders a sequence number as a fixed-width key so the
// store's sorted listing yields FIFO order.
func persistSeqKey(n uint64) string { return fmt.Sprintf("%016d", n) }

// decodePersisted parses a durable record back into its parts.
func decodePersisted(raw []byte) (persistedMessage, *soap.Envelope, error) {
	var p persistedMessage
	if err := json.Unmarshal(raw, &p); err != nil {
		return p, nil, err
	}
	env, err := soap.Decode(p.Envelope)
	if err != nil {
		return p, nil, err
	}
	return p, env, nil
}

// sortedRecords lists a space in key order (the persist-sequence FIFO
// order).
func sortedRecords(st *store.Store, space string) []struct {
	Key string
	Raw []byte
} {
	m := st.List(space)
	out := make([]struct {
		Key string
		Raw []byte
	}, 0, len(m))
	for k, v := range m {
		out = append(out, struct {
			Key string
			Raw []byte
		}{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// persistMessage journals a pending retry entry (insert or update; the
// message keeps its key across redelivery attempts). Store errors are
// swallowed: the only failure mode is a closed store during shutdown,
// where the in-memory queue is already draining.
func (q *RetryQueue) persistMessage(m *queuedMessage) {
	if q.st == nil || m.key == "" {
		return
	}
	raw, err := json.Marshal(persistedMessage{
		Endpoint: m.endpoint,
		Envelope: m.envelope.MustEncode(),
		Attempts: m.attempts,
		Due:      m.due,
		LastErr:  m.lastErr,
	})
	if err == nil {
		_ = q.st.Put(SpaceRetry, m.key, raw)
	}
}

// unpersistMessage removes a settled retry entry (delivered, dead, or
// drained).
func (q *RetryQueue) unpersistMessage(m *queuedMessage) {
	if q.st == nil || m.key == "" {
		return
	}
	_ = q.st.Delete(SpaceRetry, m.key)
}

// loadPersisted rebuilds the pending queue from the store, in original
// enqueue order. Persisted due times are discarded: a restart collapses
// any pending backoff and redelivery resumes immediately (the attempt
// count, which drives dead-lettering, is preserved). Returns the next
// free persist sequence.
func (q *RetryQueue) loadPersisted() uint64 {
	var maxSeq uint64
	now := q.clk.Now()
	for _, rec := range sortedRecords(q.st, SpaceRetry) {
		var n uint64
		if _, err := fmt.Sscanf(rec.Key, "%d", &n); err == nil && n > maxSeq {
			maxSeq = n
		}
		p, env, err := decodePersisted(rec.Raw)
		if err != nil {
			// Undecodable records are dropped from the queue but kept in
			// the store for post-mortem inspection.
			continue
		}
		q.pending = append(q.pending, &queuedMessage{
			endpoint: p.Endpoint,
			envelope: env,
			attempts: p.Attempts,
			due:      now,
			lastErr:  p.LastErr,
			key:      rec.Key,
		})
	}
	q.pendingGauge.Set(float64(len(q.pending)))
	return maxSeq + 1
}

// bindStore attaches durable write-through to the dead-letter queue and
// reloads retained letters. Called once, before the queue reader
// starts, so no locking subtleties arise.
func (q *DeadLetterQueue) bindStore(st *store.Store) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.st = st
	for _, rec := range sortedRecords(st, SpaceDLQ) {
		var n uint64
		if _, err := fmt.Sscanf(rec.Key, "%d", &n); err == nil && n >= q.seq {
			q.seq = n + 1
		}
		p, env, err := decodePersisted(rec.Raw)
		if err != nil {
			continue
		}
		q.letters = append(q.letters, DeadLetter{
			Endpoint: p.Endpoint,
			Envelope: env,
			Attempts: p.Attempts,
			LastErr:  p.LastErr,
			Time:     p.Time,
		})
		q.keys = append(q.keys, rec.Key)
	}
	// Letters added before the store was bound get persisted now.
	for len(q.keys) < len(q.letters) {
		q.persistLetterLocked(q.letters[len(q.keys)])
	}
	q.enforceCapLocked()
}

// persistLetterLocked journals one dead letter and records its key for
// eviction bookkeeping. Caller holds q.mu.
func (q *DeadLetterQueue) persistLetterLocked(d DeadLetter) {
	key := persistSeqKey(q.seq)
	q.seq++
	q.keys = append(q.keys, key)
	raw, err := json.Marshal(persistedMessage{
		Endpoint: d.Endpoint,
		Envelope: d.Envelope.MustEncode(),
		Attempts: d.Attempts,
		LastErr:  d.LastErr,
		Time:     d.Time,
	})
	if err == nil {
		_ = q.st.Put(SpaceDLQ, key, raw)
	}
}
