package bus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/masc-project/masc/internal/clock"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/store"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/transport"
)

// DeadLetter is a message whose redelivery was abandoned: "messages
// for which processing repeatedly fails are placed in a 'dead letter'
// queue after exhausting the maximum number of allowed retries and no
// further delivery will be attempted" (§3.1).
type DeadLetter struct {
	Endpoint string
	Envelope *soap.Envelope
	Attempts int
	LastErr  string
	Time     time.Time
}

// DefaultDLQCapacity bounds a DeadLetterQueue built without an
// explicit capacity. An unbounded dead-letter queue is a slow memory
// leak under sustained failure — exactly the overload condition the
// rest of the middleware defends against.
const DefaultDLQCapacity = 1024

// DeadLetterQueue retains the most recent dead letters for inspection,
// dropping the oldest once its capacity is reached. It is safe for
// concurrent use.
type DeadLetterQueue struct {
	mu      sync.Mutex
	cap     int
	dropped uint64
	letters []DeadLetter

	// st, when bound, write-throughs every letter to SpaceDLQ; keys
	// parallels letters (persist key per letter) for eviction deletes.
	st   *store.Store
	seq  uint64
	keys []string

	// droppedCounter is a nil-safe telemetry handle.
	droppedCounter *telemetry.Counter
}

// NewDeadLetterQueue builds a queue holding at most capacity letters;
// capacity 0 means DefaultDLQCapacity, negative means unbounded.
func NewDeadLetterQueue(capacity int) *DeadLetterQueue {
	if capacity == 0 {
		capacity = DefaultDLQCapacity
	}
	return &DeadLetterQueue{cap: capacity}
}

// Add appends a dead letter, evicting the oldest when full. The zero
// DeadLetterQueue is usable and capped at DefaultDLQCapacity. When a
// store is bound the letter is journaled durably and evictions delete
// their records.
func (q *DeadLetterQueue) Add(d DeadLetter) {
	q.mu.Lock()
	if q.st != nil {
		q.persistLetterLocked(d)
	}
	q.letters = append(q.letters, d)
	q.enforceCapLocked()
	q.mu.Unlock()
}

// enforceCapLocked evicts the oldest letters (and their durable
// records) down to the capacity bound. Caller holds q.mu.
func (q *DeadLetterQueue) enforceCapLocked() {
	limit := q.cap
	if limit == 0 {
		limit = DefaultDLQCapacity
	}
	if limit <= 0 || len(q.letters) <= limit {
		return
	}
	drop := len(q.letters) - limit
	if q.st != nil {
		for _, k := range q.keys[:drop] {
			_ = q.st.Delete(SpaceDLQ, k)
		}
		q.keys = append(q.keys[:0], q.keys[drop:]...)
	}
	q.letters = append(q.letters[:0], q.letters[drop:]...)
	q.dropped += uint64(drop)
	q.droppedCounter.Add(uint64(drop))
}

// Dropped reports how many dead letters were evicted to stay within
// the capacity bound.
func (q *DeadLetterQueue) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Letters returns a copy of the queue contents.
func (q *DeadLetterQueue) Letters() []DeadLetter {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]DeadLetter, len(q.letters))
	copy(out, q.letters)
	return out
}

// Len returns the number of dead letters.
func (q *DeadLetterQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.letters)
}

// queuedMessage is one message awaiting (re)delivery.
type queuedMessage struct {
	endpoint string
	envelope *soap.Envelope
	attempts int
	due      time.Time
	lastErr  string
	key      string     // durable record key; empty without a store
	done     chan error // closed with final outcome; may be nil
}

// RetryQueue is the Invocation Retry Handler for one-way messages:
// "the Invocation Retry Handler places the messages that fail to be
// delivered in a retry queue and the queue reader tries redelivery
// using the pattern specified by the used recovery policy" (§3.1).
// Delivery order among due messages is FIFO. RetryQueue owns a reader
// goroutine; Stop shuts it down and waits for exit.
type RetryQueue struct {
	clk      clock.Clock
	invoker  transport.Invoker
	retry    policy.RetryAction
	dlq      *DeadLetterQueue
	pollTick time.Duration

	pendingGauge *telemetry.Gauge
	deliveries   *telemetry.CounterVec

	st      *store.Store
	journal *telemetry.Journal

	mu      sync.Mutex
	seq     uint64 // next durable record key
	pending []*queuedMessage

	stop chan struct{}
	done chan struct{}
}

// RetryQueueConfig configures NewRetryQueue.
type RetryQueueConfig struct {
	// Clock is the time source (defaults to the real clock).
	Clock clock.Clock
	// Invoker performs deliveries.
	Invoker transport.Invoker
	// Policy is the redelivery pattern; MaxAttempts counts retries
	// after the first delivery attempt.
	Policy policy.RetryAction
	// DLQ receives abandoned messages (one is created if nil).
	DLQ *DeadLetterQueue
	// DLQCapacity bounds the created DLQ when DLQ is nil: 0 means
	// DefaultDLQCapacity, negative means unbounded.
	DLQCapacity int
	// PollInterval is the queue reader's wakeup period (defaults to
	// 10ms; with a fake clock, advance in multiples of it).
	PollInterval time.Duration
	// Metrics optionally records queue depth and delivery outcomes.
	Metrics *telemetry.Registry
	// Store optionally persists pending entries (SpaceRetry) and dead
	// letters (SpaceDLQ): after a crash, pending messages re-enqueue
	// and the DLQ reloads on the next NewRetryQueue over the same
	// store.
	Store *store.Store
	// Journal optionally receives audit records (e.g. messages drained
	// to the DLQ at shutdown).
	Journal *telemetry.Journal
}

// NewRetryQueue builds and starts a retry queue.
func NewRetryQueue(cfg RetryQueueConfig) *RetryQueue {
	q := &RetryQueue{
		clk:      cfg.Clock,
		invoker:  cfg.Invoker,
		retry:    cfg.Policy,
		dlq:      cfg.DLQ,
		pollTick: cfg.PollInterval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if q.clk == nil {
		q.clk = clock.New()
	}
	if q.dlq == nil {
		q.dlq = NewDeadLetterQueue(cfg.DLQCapacity)
	}
	if q.pollTick <= 0 {
		q.pollTick = 10 * time.Millisecond
	}
	q.pendingGauge = cfg.Metrics.Gauge("masc_retryqueue_pending",
		"Messages awaiting (re)delivery in the retry queue.").With()
	q.deliveries = cfg.Metrics.Counter("masc_retryqueue_deliveries_total",
		"Retry-queue delivery outcomes (delivered, requeued, dead).", "outcome")
	q.dlq.mu.Lock()
	if q.dlq.droppedCounter == nil {
		q.dlq.droppedCounter = cfg.Metrics.Counter("masc_dlq_dropped_total",
			"Dead letters evicted to respect the DLQ capacity bound.").With()
	}
	q.dlq.mu.Unlock()
	q.st = cfg.Store
	q.journal = cfg.Journal
	if q.st != nil {
		q.dlq.bindStore(q.st)
		q.seq = q.loadPersisted()
	}
	go q.reader()
	return q
}

// DLQ returns the dead-letter queue.
func (q *RetryQueue) DLQ() *DeadLetterQueue { return q.dlq }

// Pending reports how many messages await (re)delivery.
func (q *RetryQueue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// Enqueue schedules a message for delivery. The returned channel
// receives the final outcome (nil on delivered, the last error on
// dead-lettering) and is closed afterwards.
func (q *RetryQueue) Enqueue(endpoint string, env *soap.Envelope) <-chan error {
	done := make(chan error, 1)
	m := &queuedMessage{
		endpoint: endpoint,
		envelope: env.Clone(),
		due:      q.clk.Now(),
		done:     done,
	}
	q.mu.Lock()
	if q.st != nil {
		m.key = persistSeqKey(q.seq)
		q.seq++
		// Journal before publishing to the reader, so a record always
		// exists by the time the message can settle (and be deleted).
		q.persistMessage(m)
	}
	q.pending = append(q.pending, m)
	q.pendingGauge.Set(float64(len(q.pending)))
	q.mu.Unlock()
	return done
}

// ErrDrained is delivered to an Enqueue caller's outcome channel when
// the queue is stopped before the message could be delivered.
var ErrDrained = errors.New("bus: retry queue stopped before delivery; message moved to the dead-letter queue")

// Stop shuts down the queue reader, waits for it to exit, then drains
// every still-pending message into the dead-letter queue: a clean
// shutdown must not silently drop undelivered one-way messages. Each
// drained message is counted (outcome "drained"), audited, and its
// outcome channel receives ErrDrained. With a bound store the DLQ
// records are durable, so the messages remain inspectable after
// restart; after a crash (no Stop) the pending entries instead
// re-enqueue from the store.
func (q *RetryQueue) Stop() {
	select {
	case <-q.stop:
	default:
		close(q.stop)
	}
	<-q.done
	q.drainToDLQ()
}

// drainToDLQ moves all pending messages to the DLQ. Idempotent; runs
// after the reader goroutine has exited.
func (q *RetryQueue) drainToDLQ() {
	q.mu.Lock()
	drained := q.pending
	q.pending = nil
	q.pendingGauge.Set(0)
	q.mu.Unlock()
	if len(drained) == 0 {
		return
	}
	now := q.clk.Now()
	for _, m := range drained {
		lastErr := m.lastErr
		if lastErr == "" {
			lastErr = "queue stopped before first delivery attempt"
		}
		q.deliveries.With("drained").Inc()
		q.dlq.Add(DeadLetter{
			Endpoint: m.endpoint,
			Envelope: m.envelope,
			Attempts: m.attempts,
			LastErr:  lastErr,
			Time:     now,
		})
		q.unpersistMessage(m)
		if m.done != nil {
			m.done <- ErrDrained
			close(m.done)
		}
	}
	if q.journal != nil {
		q.journal.Record(telemetry.Entry{
			Level:     telemetry.LevelWarn,
			Kind:      telemetry.KindAudit,
			Component: "bus",
			Message: fmt.Sprintf("retry queue stopped: %d undelivered message(s) drained to the dead-letter queue",
				len(drained)),
			Fields: map[string]string{"drained": fmt.Sprint(len(drained))},
		})
	}
}

func (q *RetryQueue) reader() {
	defer close(q.done)
	for {
		select {
		case <-q.stop:
			return
		case <-q.clk.After(q.pollTick):
		}
		q.drainDue()
	}
}

func (q *RetryQueue) drainDue() {
	now := q.clk.Now()
	q.mu.Lock()
	var due []*queuedMessage
	kept := q.pending[:0]
	for _, m := range q.pending {
		if !m.due.After(now) {
			due = append(due, m)
		} else {
			kept = append(kept, m)
		}
	}
	q.pending = kept
	q.pendingGauge.Set(float64(len(q.pending)))
	q.mu.Unlock()

	for _, m := range due {
		q.deliver(m)
	}
}

func (q *RetryQueue) deliver(m *queuedMessage) {
	resp, err := q.invoker.Invoke(context.Background(), m.endpoint, m.envelope)
	if err == nil && resp != nil && resp.IsFault() {
		err = resp.Fault
	}
	if err == nil {
		q.deliveries.With("delivered").Inc()
		q.unpersistMessage(m)
		if m.done != nil {
			m.done <- nil
			close(m.done)
		}
		return
	}

	m.attempts++
	m.lastErr = err.Error()
	if m.attempts > q.retry.MaxAttempts {
		q.deliveries.With("dead").Inc()
		q.dlq.Add(DeadLetter{
			Endpoint: m.endpoint,
			Envelope: m.envelope,
			Attempts: m.attempts,
			LastErr:  m.lastErr,
			Time:     q.clk.Now(),
		})
		q.unpersistMessage(m)
		if m.done != nil {
			m.done <- err
			close(m.done)
		}
		return
	}

	delay := q.retry.Delay
	if q.retry.Backoff == policy.BackoffExponential {
		for i := 1; i < m.attempts; i++ {
			delay *= 2
		}
	}
	m.due = q.clk.Now().Add(delay)
	q.deliveries.With("requeued").Inc()
	q.persistMessage(m)
	q.mu.Lock()
	q.pending = append(q.pending, m)
	q.pendingGauge.Set(float64(len(q.pending)))
	q.mu.Unlock()
}
