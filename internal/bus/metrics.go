package bus

import (
	"github.com/masc-project/masc/internal/telemetry"
)

// busMetrics holds the pre-registered instrument handles for the
// messaging layer's hot paths. Every field is nil-safe: with no
// telemetry wired in the handles are nil and their methods no-op.
type busMetrics struct {
	// routes counts Bus.Invoke dispatches by resolution path.
	routes *telemetry.CounterVec
	// invocations counts completed VEP invocations by outcome.
	invocations *telemetry.CounterVec
	// latency measures end-to-end VEP invocation time (including
	// recovery) in seconds.
	latency *telemetry.HistogramVec
	// attempts counts individual backend attempts by outcome.
	attempts *telemetry.CounterVec
	// attemptSeconds measures single backend attempt time.
	attemptSeconds *telemetry.HistogramVec
	// faults counts classified invocation faults.
	faults *telemetry.CounterVec
	// retries counts recovery retry attempts.
	retries *telemetry.CounterVec
	// failovers counts substitution attempts to alternate targets.
	failovers *telemetry.CounterVec
	// broadcasts counts concurrent-invocation recoveries.
	broadcasts *telemetry.CounterVec
	// skips counts Skip-action synthetic responses.
	skips *telemetry.CounterVec
	// adaptations counts adaptation policies that handled a fault.
	adaptations *telemetry.CounterVec
	// selections counts which target each selection strategy ranked
	// first.
	selections *telemetry.CounterVec
	// demotions counts preventive target demotions.
	demotions *telemetry.CounterVec
	// shed counts requests refused by admission control, by reason.
	shed *telemetry.CounterVec
	// queueDepth tracks the admission wait-queue depth per VEP.
	queueDepth *telemetry.GaugeVec
	// admitted tracks admitted in-flight mediations per VEP.
	admitted *telemetry.GaugeVec
	// breakerState tracks each backend's circuit state
	// (0 closed, 1 half-open, 2 open).
	breakerState *telemetry.GaugeVec
	// breakerTrips counts closed/half-open -> open transitions.
	breakerTrips *telemetry.CounterVec
	// hedges counts hedged attempts (launched) and hedge wins (won).
	hedges *telemetry.CounterVec
}

func newBusMetrics(r *telemetry.Registry) busMetrics {
	return busMetrics{
		routes: r.Counter("masc_bus_invocations_total",
			"Bus.Invoke dispatches by route (vep, proxy, passthrough).", "route"),
		invocations: r.Counter("masc_vep_invocations_total",
			"Completed VEP invocations by outcome (ok, fault).", "vep", "operation", "outcome"),
		latency: r.Histogram("masc_vep_invocation_seconds",
			"End-to-end VEP invocation latency including recovery.", nil, "vep"),
		attempts: r.Counter("masc_vep_attempts_total",
			"Individual backend attempts by outcome (ok, fault, error).", "vep", "target", "outcome"),
		attemptSeconds: r.Histogram("masc_vep_attempt_seconds",
			"Single backend attempt latency.", nil, "vep", "target"),
		faults: r.Counter("masc_vep_faults_total",
			"Classified invocation faults.", "vep", "fault_type"),
		retries: r.Counter("masc_vep_retries_total",
			"Recovery retry attempts.", "vep"),
		failovers: r.Counter("masc_vep_failovers_total",
			"Substitution (failover) attempts to alternate targets.", "vep"),
		broadcasts: r.Counter("masc_vep_broadcasts_total",
			"Concurrent-invocation recoveries.", "vep"),
		skips: r.Counter("masc_vep_skips_total",
			"Skip-action synthetic responses.", "vep"),
		adaptations: r.Counter("masc_vep_adaptations_total",
			"Adaptation policies that handled a fault.", "vep", "policy"),
		selections: r.Counter("masc_vep_selections_total",
			"First-ranked target per selection decision.", "vep", "strategy", "target"),
		demotions: r.Counter("masc_vep_demotions_total",
			"Preventive target demotions.", "vep", "target"),
		shed: r.Counter("masc_vep_shed_total",
			"Requests shed by admission control (queue full, queue timeout).", "vep", "reason"),
		queueDepth: r.Gauge("masc_vep_admission_queue_depth",
			"Requests waiting for an admission slot.", "vep"),
		admitted: r.Gauge("masc_vep_admission_in_flight",
			"Admitted in-flight mediations.", "vep"),
		breakerState: r.Gauge("masc_vep_breaker_state",
			"Per-backend circuit state (0 closed, 1 half-open, 2 open).", "vep", "target"),
		breakerTrips: r.Counter("masc_vep_breaker_trips_total",
			"Circuit-breaker open transitions.", "vep", "target"),
		hedges: r.Counter("masc_vep_hedges_total",
			"Hedged invocations by outcome (launched, won).", "vep", "outcome"),
	}
}
