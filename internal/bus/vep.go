package bus

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/monitor"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/policy/compile"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/wsdl"
	"github.com/masc-project/masc/internal/xmltree"
	"github.com/masc-project/masc/internal/xpath"
)

// SubjectPrefix prefixes VEP names to form policy-attachment subjects
// (e.g. VEP "Retailer" has subject "vep:Retailer").
const SubjectPrefix = "vep:"

// VEPConfig configures CreateVEP.
type VEPConfig struct {
	// Name identifies the VEP; its address is "vep:"+Name.
	Name string
	// Services are the initial registered equivalent services.
	Services []string
	// Contract is the abstract WSDL the VEP exposes ("exposes an
	// abstract WSDL for accessing the configured services").
	Contract *wsdl.Contract
	// Selection is the default selection strategy (round-robin if
	// empty).
	Selection policy.SelectionKind
	// InvokeTimeout bounds each downstream attempt (default 10s).
	InvokeTimeout time.Duration
	// MinQoSSamples is the observation count a target needs before
	// best-QoS selection trusts its metrics (default 1).
	MinQoSSamples int
	// DemotionPeriod is how long a target stays avoided after a
	// preventive SLA-violation adaptation demotes it (default 30s).
	DemotionPeriod time.Duration
	// Protection explicitly configures overload protection (admission
	// control, circuit breakers, hedging). When nil, CreateVEP applies
	// the first ProtectionPolicy scoped to the VEP's subject from the
	// bus's policy repository.
	Protection *policy.ProtectionPolicy
}

// VEP is a Virtual End Point: "a VEP allows virtualization by grouping
// a set of functionally equivalent services and exposes an abstract
// WSDL for accessing the configured services ... The VEP acts as a
// recovery block and various runtime policies can be associated with
// it" (§3.1). It performs dynamic Find/Select/Bind/Invoke on behalf of
// the orchestration engine and enforces corrective adaptation policies.
type VEP struct {
	name          string
	bus           *Bus
	contract      *wsdl.Contract
	sel           selector
	invokeTimeout time.Duration
	pipeline      Pipeline

	mu         sync.RWMutex
	services   []string
	demoted    map[string]time.Time // target -> avoid until
	protection *policy.ProtectionPolicy
	adm        *admission
	breakers   *breakerGroup
	hedge      *policy.HedgeSpec
}

var _ transport.Invoker = (*VEP)(nil)

// Name returns the VEP name.
func (v *VEP) Name() string { return v.name }

// Subject returns the policy-attachment subject ("vep:Name").
func (v *VEP) Subject() string { return SubjectPrefix + v.name }

// Address returns the invokable bus address of this VEP.
func (v *VEP) Address() string { return SubjectPrefix + v.name }

// Contract returns the VEP's abstract contract (may be nil).
func (v *VEP) Contract() *wsdl.Contract { return v.contract }

// Pipeline returns the VEP's message processing pipeline for module
// configuration.
func (v *VEP) Pipeline() *Pipeline { return &v.pipeline }

// RegisterService adds an equivalent service to the group.
func (v *VEP) RegisterService(addr string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, s := range v.services {
		if s == addr {
			return
		}
	}
	v.services = append(v.services, addr)
}

// DeregisterService removes a service and reports whether it existed.
func (v *VEP) DeregisterService(addr string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, s := range v.services {
		if s == addr {
			v.services = append(v.services[:i], v.services[i+1:]...)
			return true
		}
	}
	return false
}

// Services returns the registered services in registration order.
func (v *VEP) Services() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, len(v.services))
	copy(out, v.services)
	return out
}

// activeServices filters out currently demoted targets and targets
// whose circuit breaker is open, unless that would leave none — with
// every target demoted or broken the full set is served so probes keep
// flowing and the VEP degrades to its pre-protection behaviour instead
// of failing outright.
func (v *VEP) activeServices() []string {
	now := v.bus.clk.Now()
	v.mu.RLock()
	all := make([]string, len(v.services))
	copy(all, v.services)
	demotedUntil := make(map[string]time.Time, len(v.demoted))
	for t, until := range v.demoted {
		demotedUntil[t] = until
	}
	brk := v.breakers
	v.mu.RUnlock()

	var active []string
	for _, s := range all {
		if until, bad := demotedUntil[s]; bad && now.Before(until) {
			continue
		}
		if brk != nil && !brk.selectable(s) {
			continue
		}
		active = append(active, s)
	}
	if len(active) == 0 {
		active = all
	}
	return active
}

// admission returns the VEP's admission controller (nil when overload
// protection is not configured).
func (v *VEP) admission() *admission {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.adm
}

// breakerGroup returns the VEP's circuit breakers (may be nil).
func (v *VEP) breakerGroup() *breakerGroup {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.breakers
}

// hedgeSpec returns the VEP's hedging configuration (may be nil).
func (v *VEP) hedgeSpec() *policy.HedgeSpec {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.hedge
}

// Protection returns the protection policy currently applied to this
// VEP (nil when none).
func (v *VEP) Protection() *policy.ProtectionPolicy {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.protection
}

// ApplyProtection (re)configures the VEP's overload protection —
// admission control, per-backend circuit breakers, and hedging — from
// a protection policy. Nil removes all protection. In-flight requests
// admitted under the previous controller complete against it.
func (v *VEP) ApplyProtection(pp *policy.ProtectionPolicy) {
	var adm *admission
	var brk *breakerGroup
	var hedge *policy.HedgeSpec
	if pp != nil {
		if pp.Admission != nil {
			adm = newAdmission(pp.Admission, v.bus.clk,
				v.bus.met.queueDepth.With(v.name), v.bus.met.admitted.With(v.name))
		}
		if pp.Breaker != nil {
			brk = newBreakerGroup(v.name, pp.Name, pp.Breaker, v.bus.clk, &v.bus.met, v.bus.decisions)
		}
		hedge = pp.Hedge
	}
	v.mu.Lock()
	v.protection = pp
	v.adm = adm
	v.breakers = brk
	v.hedge = hedge
	v.mu.Unlock()
}

// BreakerStates reports the circuit state name ("closed", "half-open",
// "open") per backend that has been attempted while a breaker was
// configured. Nil when no breaker is configured.
func (v *VEP) BreakerStates() map[string]string {
	if brk := v.breakerGroup(); brk != nil {
		return brk.states()
	}
	return nil
}

// AdmissionDepths reports the in-flight and queued request counts; ok
// is false when no admission controller is configured.
func (v *VEP) AdmissionDepths() (inFlight, queued int, ok bool) {
	adm := v.admission()
	if adm == nil {
		return 0, 0, false
	}
	inFlight, queued = adm.depths()
	return inFlight, queued, true
}

// Demote preventively avoids a target for the demotion period — the
// enactment of a preventive/optimizing SLA-violation policy.
func (v *VEP) Demote(target string, period time.Duration) {
	v.bus.met.demotions.With(v.name, target).Inc()
	v.mu.Lock()
	defer v.mu.Unlock()
	v.demoted[target] = v.bus.clk.Now().Add(period)
}

// SetSelection replaces the VEP's default selection strategy at
// runtime — the enactment of an optimizing adaptation (switching to
// best-QoS routing when SLAs degrade).
func (v *VEP) SetSelection(kind policy.SelectionKind, minSamples int) {
	if minSamples <= 0 {
		minSamples = 1
	}
	sel := newSelector(kind, v.bus.tracker, minSamples, v.bus.seed)
	v.mu.Lock()
	v.sel = sel
	v.mu.Unlock()
}

// operationOf derives the operation name from a request message.
func (v *VEP) operationOf(env *soap.Envelope) string {
	if v.contract != nil {
		if op, _, err := v.contract.OperationForMessage(env); err == nil {
			return op.Name
		}
	}
	if a := soap.ReadAddressing(env); a.Action != "" {
		return a.Action
	}
	return env.PayloadName().Local
}

// Invoke implements transport.Invoker: the endpoint argument is
// ignored (the VEP itself selects the concrete target). It wraps the
// mediation in telemetry: a span (child of any trace carried by ctx)
// covering selection, attempts, and recovery, plus invocation counters
// and the end-to-end latency histogram.
func (v *VEP) Invoke(ctx context.Context, _ string, req *soap.Envelope) (*soap.Envelope, error) {
	op := v.operationOf(req)
	// Every gateway-handled exchange gets a conversation ID — the
	// correlation key joining the message journal, log lines, audit
	// records, and traces. Requests without one are stamped here so the
	// ID also reaches downstream hops and the response.
	conv := ConversationIDOf(req)
	if conv == "" && v.bus.convIDs != nil {
		conv = v.bus.convIDs.Next()
		SetConversationID(req, conv)
	}
	ctx, span := telemetry.StartSpan(ctx, "vep "+v.name)
	span.SetAttr("operation", op)
	span.SetAttr("conversation", conv)
	ex := &exchange{}
	ctx = withExchange(ctx, ex)

	clk := v.bus.clk
	start := clk.Now()
	resp, target, err := v.mediate(ctx, op, req)
	dur := clk.Since(start)
	v.bus.met.latency.With(v.name).Observe(dur.Seconds())
	outcome := "ok"
	if !healthy(resp, err) {
		outcome = "fault"
	}
	v.bus.met.invocations.With(v.name, op, outcome).Inc()
	if obs := v.bus.observer; obs != nil {
		obs.Observe(v.Subject(), outcome == "ok", dur)
	}
	if resp != nil && conv != "" && resp.Header(soap.NamespaceMASC, ConversationHeader) == nil {
		SetConversationID(resp, conv)
	}
	v.journalExchange(span, conv, op, target, outcome, dur, ex.attempts.Load(), req, resp, err)
	span.EndErr(err)
	return resp, err
}

// mediate gates the mediation path behind admission control. A shed
// request is refused up front as a ServerBusy SOAP fault — classified
// and audited by monitoring like any other invocation fault — without
// consuming a selection or a backend attempt.
func (v *VEP) mediate(ctx context.Context, op string, req *soap.Envelope) (*soap.Envelope, string, error) {
	adm := v.admission()
	if adm == nil {
		return v.invoke(ctx, op, req)
	}
	if aerr := adm.acquire(ctx, v.name); aerr != nil {
		if !errors.Is(aerr, transport.ErrOverloaded) {
			// The caller went away while queued — not a shed.
			return nil, "", aerr
		}
		reason := shedReason(aerr)
		v.bus.met.shed.With(v.name, reason).Inc()
		telemetry.SpanFromContext(ctx).Annotate("admission shed (%s)", reason)
		if dec := v.bus.decisions; dec != nil {
			inFlight, queued := adm.depths()
			span := telemetry.SpanFromContext(ctx)
			dec.Record(decision.Record{
				Time:         v.bus.clk.Now(),
				Site:         decision.SiteBus,
				PolicyType:   "protection",
				Policy:       v.protectionName(),
				Subject:      v.Subject(),
				Operation:    op,
				Instance:     soap.ProcessInstanceID(req),
				Conversation: ConversationIDOf(req),
				Trace:        span.TraceID(),
				Span:         span.SpanID(),
				Trigger:      "admission",
				Verdict:      decision.VerdictMatched,
				Action:       "shed",
				Outcome:      monitor.FaultServerBusy,
				Reason:       reason,
				Inputs: map[string]string{
					"in_flight": strconv.Itoa(inFlight),
					"queued":    strconv.Itoa(queued),
				},
			})
		}
		if mon := v.bus.monitor; mon != nil {
			mon.ReportInvocationFault(v.Subject(), op, "", req, aerr)
		}
		v.bus.met.faults.With(v.name, monitor.FaultServerBusy).Inc()
		return soap.NewFaultEnvelope(soap.FaultServer, "ServerBusy: "+aerr.Error()), "", nil
	}
	defer adm.release()
	return v.invoke(ctx, op, req)
}

// invoke is the uninstrumented mediation path. It returns the serving
// target alongside the response so the exchange journal can name the
// backend that actually answered.
func (v *VEP) invoke(ctx context.Context, op string, req *soap.Envelope) (*soap.Envelope, string, error) {
	mc := &MessageContext{VEP: v.name, Operation: op, Request: req, Meta: map[string]string{}}
	if err := v.pipeline.RunRequest(mc); err != nil {
		return nil, "", err
	}
	req = mc.Request

	mon := v.bus.monitor
	if mon != nil {
		mon.ObserveMessage(v.Subject(), op, req, wsdl.Request)
		if viol := mon.CheckRequest(v.Subject(), op, req, v.contract); viol != nil {
			return nil, "", viol
		}
	}

	order := v.order()
	if len(order) == 0 {
		return nil, "", fmt.Errorf("%w: VEP %s has no registered services", transport.ErrEndpointNotFound, v.name)
	}
	v.bus.met.selections.With(v.name, string(v.selKind()), order[0]).Inc()
	resp, target, err := v.attemptHedged(ctx, order, req, op)

	adapted := false
	if !healthy(resp, err) {
		faultType := v.reportFault(op, target, req, resp, err)
		v.bus.met.faults.With(v.name, faultType).Inc()
		telemetry.SpanFromContext(ctx).Annotate("fault %s classified on %s", faultType, target)
		resp, target, err = v.correct(ctx, req, op, target, faultType, resp, err)
		adapted = true
	}

	if healthy(resp, err) && mon != nil && resp != nil {
		// Propagate the request's instance correlation to the response
		// so monitoring events on responses reach the right instance.
		if soap.ProcessInstanceID(resp) == "" {
			if id := soap.ProcessInstanceID(req); id != "" {
				soap.SetProcessInstanceID(resp, id)
			}
		}
		mon.ObserveMessage(v.Subject(), op, resp, wsdl.Response)
		if viol := mon.CheckResponse(v.Subject(), op, resp, v.contract); viol != nil {
			if adapted {
				return nil, target, viol
			}
			v.bus.met.faults.With(v.name, viol.FaultType).Inc()
			telemetry.SpanFromContext(ctx).Annotate("response violation %s on %s", viol.FaultType, target)
			resp, target, err = v.correct(ctx, req, op, target, viol.FaultType, nil, viol)
			if err != nil {
				return resp, target, err
			}
			if resp != nil {
				if viol2 := mon.CheckResponse(v.Subject(), op, resp, v.contract); viol2 != nil {
					return nil, target, viol2
				}
			}
		}
	}
	if err != nil {
		return resp, target, err
	}

	mc.Response = resp
	mc.Target = target
	if err := v.pipeline.RunResponse(mc); err != nil {
		return nil, target, err
	}
	return mc.Response, target, nil
}

func healthy(resp *soap.Envelope, err error) bool {
	return err == nil && (resp == nil || !resp.IsFault())
}

// order returns the preference-ordered active targets.
func (v *VEP) order() []string {
	v.mu.RLock()
	sel := v.sel
	v.mu.RUnlock()
	return sel.order(v.activeServices())
}

// selKind names the current default selection strategy.
func (v *VEP) selKind() policy.SelectionKind {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.sel.kind()
}

// attempt performs one measured downstream invocation.
func (v *VEP) attempt(ctx context.Context, target string, req *soap.Envelope, op string) (*soap.Envelope, error) {
	actx, span := telemetry.StartSpan(ctx, "attempt "+target)
	span.SetAttr("operation", op)
	if ex := exchangeFrom(ctx); ex != nil {
		ex.attempts.Add(1)
	}
	// Propagate the trace context as MASC SOAP headers so a downstream
	// MASC gateway records this hop under the same trace ID.
	soap.SetTraceContext(req, span.TraceID(), span.SpanID())
	var cancel context.CancelFunc
	if v.invokeTimeout > 0 {
		actx, cancel = context.WithTimeout(actx, v.invokeTimeout)
		defer cancel()
	}
	clk := v.bus.clk
	start := clk.Now()
	brk := v.breakerGroup()
	if brk != nil {
		brk.markAttempt(target)
	}
	resp, err := v.bus.downstream.Invoke(actx, target, req)
	dur := clk.Since(start)
	ok := healthy(resp, err)
	if brk != nil {
		brk.record(target, ok)
	}
	if v.bus.tracker != nil {
		v.bus.tracker.Record(target, dur, ok)
	}
	outcome := "ok"
	switch {
	case err != nil:
		outcome = "error"
	case resp != nil && resp.IsFault():
		outcome = "fault"
	}
	v.bus.met.attempts.With(v.name, target, outcome).Inc()
	v.bus.met.attemptSeconds.With(v.name, target).Observe(dur.Seconds())
	span.SetAttr("outcome", outcome)
	level := telemetry.LevelInfo
	if outcome != "ok" {
		level = telemetry.LevelWarn
	}
	v.bus.log.Span(span).Conversation(ConversationIDOf(req)).Log(level,
		"attempt "+target+": "+outcome,
		"vep", v.name, "operation", op, "target", target, "outcome", outcome,
		"latency_ms", strconv.FormatFloat(float64(dur)/float64(time.Millisecond), 'f', 3, 64))
	span.EndErr(err)
	return resp, err
}

func (v *VEP) reportFault(op, target string, req, resp *soap.Envelope, err error) string {
	if v.bus.monitor != nil {
		msg := req
		if resp != nil && resp.IsFault() {
			msg = resp
			// Keep correlation: fault responses may lack headers.
			if soap.ProcessInstanceID(msg) == "" {
				if id := soap.ProcessInstanceID(req); id != "" {
					soap.SetProcessInstanceID(msg, id)
				}
			}
			if msg.Header(soap.NamespaceMASC, ConversationHeader) == nil {
				if id := ConversationIDOf(req); id != "" {
					SetConversationID(msg, id)
				}
			}
		}
		return v.bus.monitor.ReportInvocationFault(v.Subject(), op, target, msg, err)
	}
	if ft := monitor.ClassifyError(err); ft != "" {
		return ft
	}
	return monitor.ClassifyResponse(resp)
}

// correct runs the Adaptation Manager decision loop (§3.1(3)): find
// the adaptation policies triggered by the classified fault (ordered
// by priority), check their conditions and pre-states, and execute
// their actions at the appropriate layer until one policy resolves the
// fault. Returns the recovered response (with the serving target) or
// the original failure.
func (v *VEP) correct(ctx context.Context, req *soap.Envelope, op, failedTarget, faultType string,
	origResp *soap.Envelope, origErr error) (*soap.Envelope, string, error) {

	ev := event.Event{
		Type:      event.TypeFaultDetected,
		FaultType: faultType,
		Operation: op,
	}
	repo := v.bus.policySource()
	instanceID := soap.ProcessInstanceID(req)

	for _, pol := range compile.AdaptationsFor(repo, ev, v.Subject()) {
		start := v.bus.clk.Now()
		ok, reason := v.policyApplies(pol, req, op, failedTarget, faultType, instanceID)
		if !ok {
			v.recordAdaptDecision(ctx, pol, req, op, faultType, instanceID, start,
				decision.VerdictRejected, reason, "")
			continue
		}
		resp, target, handled := v.executePolicy(ctx, pol.AdaptationPolicy, req, op, failedTarget, instanceID)
		if !handled {
			v.recordAdaptDecision(ctx, pol, req, op, faultType, instanceID, start,
				decision.VerdictError, "", "actions_failed")
			continue
		}
		if pol.StateAfter != "" && v.bus.procAdapter != nil && instanceID != "" {
			v.bus.procAdapter.SetAdaptationState(instanceID, pol.StateAfter)
		}
		v.bus.met.adaptations.With(v.name, pol.Name).Inc()
		span := telemetry.SpanFromContext(ctx)
		span.Annotate("adaptation policy %s handled %s (served by %s)",
			pol.Name, faultType, target)
		v.auditAdaptation(span, ConversationIDOf(req), pol.Name, faultType, op, failedTarget, target)
		v.publishAdaptation(pol.AdaptationPolicy, op, faultType, instanceID)
		v.recordAdaptDecision(ctx, pol, req, op, faultType, instanceID, start,
			decision.VerdictMatched, "", "served_by:"+target)
		return resp, target, nil
	}
	return origResp, failedTarget, origErr
}

// recordAdaptDecision emits one provenance record for one messaging-
// layer adaptation-policy evaluation in correct(), carrying the
// trace/span of the mediation so the record joins the exchange's
// trace and journal slice.
func (v *VEP) recordAdaptDecision(ctx context.Context, pol *compile.CompiledAdaptation,
	req *soap.Envelope, op, faultType, instanceID string, start time.Time,
	verdict decision.Verdict, reason, outcome string) {

	dec := v.bus.decisions
	if dec == nil {
		return
	}
	span := telemetry.SpanFromContext(ctx)
	var checks []decision.Assertion
	if pol.StateBefore != "" {
		a := decision.Assertion{Name: "state-before", Value: pol.StateBefore}
		if reason == "state_mismatch" || reason == "no_process_state" {
			a.Reason = reason
		} else {
			a.Matched = true
		}
		checks = append(checks, a)
	}
	if pol.Condition != nil {
		a := decision.Assertion{Name: "condition", Value: pol.Condition.Source()}
		switch {
		case reason == "state_mismatch" || reason == "no_process_state":
			a.Skipped = true
			a.Reason = "short_circuit"
		case reason != "":
			a.Reason = reason
		default:
			a.Matched = true
		}
		checks = append(checks, a)
	}
	rec := decision.Record{
		Time:         start,
		Site:         decision.SiteBus,
		PolicyType:   "adaptation",
		Policy:       pol.Name,
		Subject:      v.Subject(),
		Operation:    op,
		Instance:     instanceID,
		Conversation: ConversationIDOf(req),
		Trace:        span.TraceID(),
		Span:         span.SpanID(),
		Trigger:      string(event.TypeFaultDetected),
		Verdict:      verdict,
		Reason:       reason,
		Outcome:      outcome,
		Inputs: map[string]string{
			"faultType":  faultType,
			"operation":  op,
			"instanceID": instanceID,
		},
		Assertions: checks,
		Latency:    v.bus.clk.Since(start),
	}
	if verdict == decision.VerdictMatched || verdict == decision.VerdictError {
		rec.Action = pol.ActionsJoined
	}
	dec.Record(rec)
}

// protectionName names the VEP's applied protection policy for
// decision records ("" when none).
func (v *VEP) protectionName() string {
	if pp := v.Protection(); pp != nil {
		return pp.Name
	}
	return ""
}

// policyApplies reports whether a messaging-layer recovery policy's
// gates hold; when they do not, the second return names the rejection
// reason for the decision record.
func (v *VEP) policyApplies(pol *compile.CompiledAdaptation, req *soap.Envelope, op, target, faultType, instanceID string) (bool, string) {
	if pol.StateBefore != "" {
		if v.bus.procAdapter == nil || instanceID == "" {
			return false, "no_process_state"
		}
		state, ok := v.bus.procAdapter.AdaptationState(instanceID)
		if !ok || state != pol.StateBefore {
			return false, "state_mismatch"
		}
	}
	if pol.Condition == nil {
		return true, ""
	}
	env := xpath.Context{Vars: map[string]xpath.Value{
		"faultType":  xpath.String(faultType),
		"target":     xpath.String(target),
		"operation":  xpath.String(op),
		"instanceID": xpath.String(instanceID),
	}}
	ok, err := pol.EvalCondition(req.ToXML(), env)
	if err != nil {
		return false, "condition_error"
	}
	if !ok {
		return false, "condition_false"
	}
	return true, ""
}

// executePolicy runs a policy's actions in order. It reports whether
// the policy produced a successful outcome (a healthy response, a
// skip, or — for purely process-layer policies — completed process
// actions). Once a messaging action has recovered a response, further
// recovery attempts are skipped but remaining process-layer actions
// still execute — a cross-layer policy's trailing ResumeProcess must
// run even when an earlier Retry already succeeded (§3.1(3)).
func (v *VEP) executePolicy(ctx context.Context, pol *policy.AdaptationPolicy,
	req *soap.Envelope, op, failedTarget, instanceID string) (*soap.Envelope, string, bool) {

	var (
		resp        *soap.Envelope
		target      = failedTarget
		recovered   = false
		processOnly = true
	)
	for _, act := range pol.Actions {
		switch a := act.(type) {
		case policy.RetryAction:
			processOnly = false
			if recovered {
				continue
			}
			if r, tgt, ok := v.doRetry(ctx, a, req, op, failedTarget); ok {
				resp, target, recovered = r, tgt, true
			}
		case policy.SubstituteAction:
			processOnly = false
			if recovered {
				continue
			}
			if r, tgt, ok := v.doSubstitute(ctx, a, req, op, failedTarget); ok {
				resp, target, recovered = r, tgt, true
			}
		case policy.ConcurrentAction:
			processOnly = false
			if recovered {
				continue
			}
			if r, tgt, ok := v.doBroadcast(ctx, a, req, op); ok {
				resp, target, recovered = r, tgt, true
			}
		case policy.SkipAction:
			processOnly = false
			if recovered {
				continue
			}
			v.bus.met.skips.With(v.name).Inc()
			telemetry.SpanFromContext(ctx).Annotate("skip: synthesized empty %sResponse", op)
			resp, recovered = v.skipResponse(op), true
		default:
			// Process-layer action: delegate across layers.
			if v.bus.procAdapter == nil {
				continue
			}
			if err := v.bus.procAdapter.ExecuteProcessAction(ctx, instanceID, act); err != nil {
				v.bus.publish(event.Event{
					Type:              event.TypeAdaptationCompleted,
					Time:              v.bus.clk.Now(),
					Source:            "wsbus/vep:" + v.name,
					PolicyName:        pol.Name,
					ProcessInstanceID: instanceID,
					Detail:            "process action " + act.ActionName() + " failed: " + err.Error(),
				})
				return resp, target, recovered
			}
		}
	}
	// A policy consisting solely of process-layer actions succeeds once
	// they have all executed.
	return resp, target, recovered || (processOnly && len(pol.Actions) > 0)
}

func (v *VEP) doRetry(ctx context.Context, a policy.RetryAction, req *soap.Envelope, op, target string) (*soap.Envelope, string, bool) {
	span := telemetry.SpanFromContext(ctx)
	delay := a.Delay
	for i := 0; i < a.MaxAttempts; i++ {
		if delay > 0 {
			select {
			case <-v.bus.clk.After(delay):
			case <-ctx.Done():
				return nil, target, false
			}
			if a.Backoff == policy.BackoffExponential {
				delay *= 2
			}
		}
		v.bus.met.retries.With(v.name).Inc()
		span.Annotate("retry %d/%d on %s", i+1, a.MaxAttempts, target)
		resp, err := v.attempt(ctx, target, req, op)
		if healthy(resp, err) {
			return resp, target, true
		}
	}
	return nil, target, false
}

func (v *VEP) doSubstitute(ctx context.Context, a policy.SubstituteAction, req *soap.Envelope, op, failedTarget string) (*soap.Envelope, string, bool) {
	sel := newSelector(a.Selection, v.bus.tracker, 1, v.bus.seed)
	var candidates []string
	for _, s := range v.activeServices() {
		if s != failedTarget {
			candidates = append(candidates, s)
		}
	}
	ordered := sel.order(candidates)
	if a.MaxAlternatives > 0 && len(ordered) > a.MaxAlternatives {
		ordered = ordered[:a.MaxAlternatives]
	}
	span := telemetry.SpanFromContext(ctx)
	for _, target := range ordered {
		v.bus.met.failovers.With(v.name).Inc()
		span.Annotate("failover %s -> %s", failedTarget, target)
		resp, err := v.attempt(ctx, target, req, op)
		if healthy(resp, err) {
			return resp, target, true
		}
	}
	return nil, failedTarget, false
}

// doBroadcast implements concurrent invocation of equivalent services:
// "making a copy of the message and modifying its route, then invoking
// multiple target services using concurrent invocation threads"; the
// first healthy response wins and the rest are aborted (§3.1(4)).
func (v *VEP) doBroadcast(ctx context.Context, a policy.ConcurrentAction, req *soap.Envelope, op string) (*soap.Envelope, string, bool) {
	targets := v.activeServices()
	if a.MaxTargets > 0 && len(targets) > a.MaxTargets {
		targets = targets[:a.MaxTargets]
	}
	if len(targets) == 0 {
		return nil, "", false
	}
	v.bus.met.broadcasts.With(v.name).Inc()
	telemetry.SpanFromContext(ctx).Annotate("concurrent invocation of %d targets", len(targets))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		resp   *soap.Envelope
		target string
		err    error
	}
	ch := make(chan result, len(targets))
	for _, target := range targets {
		go func(target string) {
			clone := req.Clone()
			addr := soap.ReadAddressing(clone)
			addr.To = target
			addr.Apply(clone)
			resp, err := v.attempt(cctx, target, clone, op)
			ch <- result{resp: resp, target: target, err: err}
		}(target)
	}
	for range targets {
		r := <-ch
		if healthy(r.resp, r.err) {
			return r.resp, r.target, true
		}
	}
	return nil, "", false
}

// skipResponse synthesizes the empty success a Skip action returns for
// non-business-critical calls.
func (v *VEP) skipResponse(op string) *soap.Envelope {
	ns := ""
	if v.contract != nil {
		ns = v.contract.TargetNamespace
	}
	payload := xmltree.New(ns, op+"Response")
	payload.SetAttr("", "skipped", "true")
	return soap.NewRequest(payload)
}

func (v *VEP) publishAdaptation(pol *policy.AdaptationPolicy, op, faultType, instanceID string) {
	data := map[string]string{"layer": string(pol.Layer)}
	if pol.BusinessValue != nil {
		data["businessValueAmount"] = strconv.FormatFloat(pol.BusinessValue.Amount, 'g', -1, 64)
		data["businessValueCurrency"] = pol.BusinessValue.Currency
		data["businessValueReason"] = pol.BusinessValue.Reason
	}
	v.bus.publish(event.Event{
		Type:              event.TypeAdaptationCompleted,
		Time:              v.bus.clk.Now(),
		Source:            "wsbus/vep:" + v.name,
		Service:           v.Subject(),
		Operation:         op,
		ProcessInstanceID: instanceID,
		FaultType:         faultType,
		PolicyName:        pol.Name,
		Data:              data,
	})
}

// CheckQoSAndPrevent evaluates SLA thresholds for every registered
// target and enacts preventive demotion policies on violations: a
// policy triggered by sla.violation whose first action is Substitute
// demotes the violating target so future selections avoid it. This is
// the paper's future-work "preventive adaptation" implemented as an
// extension (DESIGN.md §6).
func (v *VEP) CheckQoSAndPrevent(demotion time.Duration) []monitor.Violation {
	mon := v.bus.monitor
	if mon == nil {
		return nil
	}
	var all []monitor.Violation
	repo := v.bus.policySource()
	for _, target := range v.Services() {
		vs := mon.CheckQoS(v.Subject(), target)
		all = append(all, vs...)
		if len(vs) == 0 {
			continue
		}
		ev := event.Event{Type: event.TypeSLAViolation, FaultType: vs[0].FaultType}
		for _, pol := range compile.AdaptationsFor(repo, ev, v.Subject()) {
			if len(pol.Actions) == 0 {
				continue
			}
			sub, isSub := pol.Actions[0].(policy.SubstituteAction)
			if !isSub {
				continue
			}
			enacted := "demote"
			if pol.Kind == policy.KindOptimization {
				// Optimizing adaptation: re-route future traffic by the
				// policy's selection strategy instead of (only)
				// avoiding the violating target.
				v.SetSelection(sub.Selection, 1)
				enacted = "reroute:" + string(sub.Selection)
			} else {
				v.Demote(target, demotion)
			}
			v.auditPrevention(pol.Name, vs[0].FaultType, target, enacted)
			v.publishAdaptation(pol.AdaptationPolicy, "", vs[0].FaultType, "")
			if dec := v.bus.decisions; dec != nil {
				dec.Record(decision.Record{
					Time:       v.bus.clk.Now(),
					Site:       decision.SiteBus,
					PolicyType: "adaptation",
					Policy:     pol.Name,
					Subject:    v.Subject(),
					Trigger:    string(event.TypeSLAViolation),
					Verdict:    decision.VerdictMatched,
					Action:     enacted,
					Outcome:    "target:" + target,
					Inputs: map[string]string{
						"faultType": vs[0].FaultType,
						"target":    target,
					},
				})
			}
			break
		}
	}
	return all
}
