package bus

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/masc-project/masc/internal/clock"
	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/monitor"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/policy/compile"
	"github.com/masc-project/masc/internal/qos"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/store"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
	"github.com/masc-project/masc/internal/transport"
)

// Errors reported by the bus.
var (
	// ErrUnknownVEP reports addressing a VEP that was never created.
	ErrUnknownVEP = errors.New("bus: unknown virtual endpoint")
	// ErrDuplicateVEP reports creating two VEPs with one name.
	ErrDuplicateVEP = errors.New("bus: duplicate virtual endpoint")
)

// InvocationObserver receives the outcome of every mediated VEP
// invocation — subject ("vep:Name"), success per the monitor's fault
// classification, and end-to-end latency. It is the hook the SLO
// engine attaches through; defined here so the bus stays decoupled
// from the SLO layer. Implementations must be cheap and non-blocking:
// they run on the invocation hot path.
type InvocationObserver interface {
	Observe(subject string, ok bool, latency time.Duration)
}

// ProcessAdapter is the bridge wsBus uses to enact process-layer
// actions and consult process state — implemented by the MASC core's
// adaptation service. It realizes the cross-layer coordination of
// §3.1(3): suspending the calling process instance or raising its
// timeout while the messaging layer recovers.
type ProcessAdapter interface {
	// ExecuteProcessAction enacts one process-layer policy action on
	// the instance correlated with the faulty message.
	ExecuteProcessAction(ctx context.Context, instanceID string, act policy.Action) error
	// AdaptationState returns the instance's MASC adaptation state.
	AdaptationState(instanceID string) (string, bool)
	// SetAdaptationState records a policy's StateAfter.
	SetAdaptationState(instanceID, state string)
}

// Bus is the wsBus message broker. It implements transport.Invoker so
// it can be deployed "either as a gateway to a Process Orchestration
// Engine or ... as a transparent HTTP proxy" (§3.1): in gateway mode
// callers address virtual endpoints ("vep:Name") directly; in proxy
// mode real service addresses are mapped onto VEPs with Proxy and
// unmapped addresses pass through to the downstream transport.
type Bus struct {
	downstream transport.Invoker
	repo       *policy.Repository
	// policySource returns the repository consulted per adaptation
	// decision. The default returns the loaded object repository; the
	// re-parse ablation (DESIGN.md §5.1) substitutes a function that
	// re-parses policy XML on every call, as the paper's Java wsBus
	// effectively did.
	policySource func() *policy.Repository
	monitor      *monitor.Monitor
	tracker      *qos.Tracker
	events       *event.Bus
	clk          clock.Clock
	procAdapter  ProcessAdapter
	seed         int64
	store        *store.Store
	tel          *telemetry.Telemetry
	met          busMetrics
	journal      *telemetry.Journal
	log          *telemetry.Logger
	convIDs      *soap.IDGenerator
	observer     InvocationObserver
	decisions    *decision.Recorder

	mu      sync.RWMutex
	veps    map[string]*VEP
	proxies map[string]string
}

// Option configures a Bus.
type Option func(*Bus)

// WithClock injects the bus time source.
func WithClock(clk clock.Clock) Option {
	return func(b *Bus) { b.clk = clk }
}

// WithEventBus connects bus events (faults, adaptations) to an event
// bus shared with the process layer.
func WithEventBus(ev *event.Bus) Option {
	return func(b *Bus) { b.events = ev }
}

// WithPolicyRepository supplies the policy repository (an empty one is
// created otherwise).
func WithPolicyRepository(repo *policy.Repository) Option {
	return func(b *Bus) { b.repo = repo }
}

// WithQoSTracker supplies the QoS measurement service (one with an
// unbounded window is created otherwise).
func WithQoSTracker(t *qos.Tracker) Option {
	return func(b *Bus) { b.tracker = t }
}

// WithMonitor supplies the monitoring service (one is built from the
// repository, tracker, and event bus otherwise).
func WithMonitor(m *monitor.Monitor) Option {
	return func(b *Bus) { b.monitor = m }
}

// WithProcessAdapter installs the cross-layer process adapter.
func WithProcessAdapter(pa ProcessAdapter) Option {
	return func(b *Bus) { b.procAdapter = pa }
}

// WithSeed seeds randomized selection strategies for reproducibility.
func WithSeed(seed int64) Option {
	return func(b *Bus) { b.seed = seed }
}

// WithTelemetry wires the observability layer: invocation metrics are
// recorded into its registry and VEP/attempt spans are added to traces
// propagated through invocation contexts. Without this option (or with
// a nil hub) instrumentation is disabled.
func WithTelemetry(tel *telemetry.Telemetry) Option {
	return func(b *Bus) { b.tel = tel }
}

// WithPolicySource overrides how the adaptation manager obtains
// policies per decision (ablation hook; see DESIGN.md §5.1).
func WithPolicySource(src func() *policy.Repository) Option {
	return func(b *Bus) { b.policySource = src }
}

// WithInvocationObserver attaches an observer notified of every
// mediated invocation's outcome (the SLO engine's feed).
func WithInvocationObserver(o InvocationObserver) Option {
	return func(b *Bus) { b.observer = o }
}

// WithDecisions attaches the decision-provenance recorder: protection
// verdicts (admission sheds, breaker transitions, hedge fires) and
// messaging-layer adaptation-policy evaluations leave records, and the
// bus's default monitor records its own policy checks through the same
// recorder. Nil disables capture.
func WithDecisions(d *decision.Recorder) Option {
	return func(b *Bus) { b.decisions = d }
}

// WithStore attaches the durable state store: retry queues built via
// NewRetryQueueFor persist their pending entries and DLQ, so
// undelivered one-way messages survive a middleware restart.
func WithStore(st *store.Store) Option {
	return func(b *Bus) { b.store = st }
}

// New builds a bus over a downstream transport.
func New(downstream transport.Invoker, opts ...Option) *Bus {
	b := &Bus{
		downstream: downstream,
		clk:        clock.New(),
		seed:       1,
		veps:       make(map[string]*VEP),
		proxies:    make(map[string]string),
	}
	for _, opt := range opts {
		opt(b)
	}
	if b.repo == nil {
		b.repo = policy.NewRepository()
	}
	if b.tracker == nil {
		b.tracker = qos.NewTracker(0, qos.WithClock(b.clk))
	}
	if b.monitor == nil {
		monOpts := []monitor.Option{
			monitor.WithClock(b.clk),
			monitor.WithQoSTracker(b.tracker),
			monitor.WithStore(monitor.NewStore(0)),
			monitor.WithJournal(b.tel.Logs()),
			monitor.WithDecisions(b.decisions),
		}
		if b.events != nil {
			monOpts = append(monOpts, monitor.WithEventBus(b.events))
		}
		b.monitor = monitor.New(b.repo, monOpts...)
	}
	if b.policySource == nil {
		repo := b.repo
		b.policySource = func() *policy.Repository { return repo }
	}
	b.met = newBusMetrics(b.tel.Registry())
	b.journal = b.tel.Logs()
	b.log = b.tel.Logger("bus")
	b.convIDs = soap.NewIDGenerator("urn:masc:conv:")
	return b
}

// Telemetry returns the bus's telemetry hub (nil when not wired).
func (b *Bus) Telemetry() *telemetry.Telemetry { return b.tel }

// Policies returns the bus's policy repository.
func (b *Bus) Policies() *policy.Repository { return b.repo }

// Tracker returns the QoS measurement service.
func (b *Bus) Tracker() *qos.Tracker { return b.tracker }

// Monitor returns the monitoring service.
func (b *Bus) Monitor() *monitor.Monitor { return b.monitor }

// Decisions returns the decision-provenance recorder (nil when not
// wired).
func (b *Bus) Decisions() *decision.Recorder { return b.decisions }

// Clock returns the bus time source.
func (b *Bus) Clock() clock.Clock { return b.clk }

// SetProcessAdapter installs the cross-layer adapter after
// construction (the core wires itself in once the engine exists).
func (b *Bus) SetProcessAdapter(pa ProcessAdapter) {
	b.procAdapter = pa
}

// SetInvocationObserver installs the invocation observer after
// construction — the SLO engine is typically derived from the policy
// repository once the VEPs exist. Call before serving traffic.
func (b *Bus) SetInvocationObserver(o InvocationObserver) {
	b.observer = o
}

// CreateVEP creates and registers a virtual endpoint.
func (b *Bus) CreateVEP(cfg VEPConfig) (*VEP, error) {
	if cfg.Name == "" {
		return nil, errors.New("bus: VEP needs a name")
	}
	sel := cfg.Selection
	if sel == "" {
		sel = policy.SelectRoundRobin
	}
	timeout := cfg.InvokeTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	minSamples := cfg.MinQoSSamples
	if minSamples <= 0 {
		minSamples = 1
	}
	v := &VEP{
		name:          cfg.Name,
		bus:           b,
		contract:      cfg.Contract,
		sel:           newSelector(sel, b.tracker, minSamples, b.seed),
		invokeTimeout: timeout,
		demoted:       make(map[string]time.Time),
	}
	v.services = append(v.services, cfg.Services...)
	pp := cfg.Protection
	if pp == nil {
		pp = compile.ProtectionLookup(b.repo, v.Subject())
	}
	if pp != nil {
		v.ApplyProtection(pp)
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	if _, exists := b.veps[cfg.Name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateVEP, cfg.Name)
	}
	b.veps[cfg.Name] = v
	return v, nil
}

// VEP returns a created VEP by name.
func (b *Bus) VEP(name string) (*VEP, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.veps[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVEP, name)
	}
	return v, nil
}

// VEPs returns the names of all virtual endpoints, sorted.
func (b *Bus) VEPs() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.veps))
	for n := range b.veps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Proxy maps a real service address onto a VEP (transparent-proxy
// deployment): invocations of realAddr are mediated by the VEP.
func (b *Bus) Proxy(realAddr, vepName string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.veps[vepName]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVEP, vepName)
	}
	b.proxies[realAddr] = vepName
	return nil
}

var _ transport.Invoker = (*Bus)(nil)

// Invoke implements transport.Invoker. Addresses resolve in order:
// explicit VEP addresses ("vep:Name"), proxied real addresses, and
// finally pass-through to the downstream transport.
func (b *Bus) Invoke(ctx context.Context, addr string, req *soap.Envelope) (*soap.Envelope, error) {
	if name, ok := strings.CutPrefix(addr, SubjectPrefix); ok {
		v, err := b.VEP(name)
		if err != nil {
			return nil, err
		}
		b.met.routes.With("vep").Inc()
		return v.Invoke(ctx, addr, req)
	}
	b.mu.RLock()
	vepName, proxied := b.proxies[addr]
	b.mu.RUnlock()
	if proxied {
		v, err := b.VEP(vepName)
		if err != nil {
			return nil, err
		}
		b.met.routes.With("proxy").Inc()
		return v.Invoke(ctx, addr, req)
	}
	b.met.routes.With("passthrough").Inc()
	return b.downstream.Invoke(ctx, addr, req)
}

// NewRetryQueueFor builds a retry queue delivering through this bus
// with the given redelivery policy — the one-way Invocation Retry
// Handler (used e.g. for SCM logEvent notifications).
func (b *Bus) NewRetryQueueFor(pol policy.RetryAction, pollInterval time.Duration) *RetryQueue {
	return NewRetryQueue(RetryQueueConfig{
		Clock:        b.clk,
		Invoker:      b,
		Policy:       pol,
		PollInterval: pollInterval,
		Metrics:      b.tel.Registry(),
		Store:        b.store,
		Journal:      b.journal,
	})
}

func (b *Bus) publish(e event.Event) {
	if b.events != nil {
		b.events.Publish(e)
	}
}
