package bus

import (
	"context"
	"strings"
	"testing"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/xmltree"
)

// bareReq builds a request with no correlation headers at all.
func bareReq(t *testing.T) *soap.Envelope {
	t.Helper()
	p, err := xmltree.ParseString(`<getCatalog xmlns="urn:scm"><category>tv</category></getCatalog>`)
	if err != nil {
		t.Fatal(err)
	}
	return soap.NewRequest(p)
}

func TestExchangeJournaledWithGeneratedConversation(t *testing.T) {
	svc := &scriptedService{}
	b, _, tel := telemetryBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})

	req := bareReq(t)
	resp, err := b.Invoke(context.Background(), "vep:Retailer", req)
	if err != nil || resp.IsFault() {
		t.Fatalf("resp=%v err=%v", resp, err)
	}

	// The gateway stamped a conversation ID on the request and response.
	conv := ConversationIDOf(req)
	if conv == "" || !strings.HasPrefix(conv, "urn:masc:conv:") {
		t.Fatalf("request conversation = %q, want generated urn:masc:conv:*", conv)
	}
	if got := ConversationIDOf(resp); got != conv {
		t.Fatalf("response conversation = %q, want %q", got, conv)
	}

	msgs := tel.Logs().Entries(telemetry.Query{Kinds: []telemetry.Kind{telemetry.KindMessage}})
	if len(msgs) != 1 {
		t.Fatalf("message entries = %d, want 1", len(msgs))
	}
	e := msgs[0]
	if e.Conversation != conv || e.Component != "bus" || e.Level != telemetry.LevelInfo {
		t.Fatalf("message entry = %+v", e)
	}
	for k, want := range map[string]string{
		"vep": "Retailer", "operation": "getCatalog", "target": "inproc://a",
		"outcome": "ok", "attempts": "1", "request": "getCatalog", "response": "getCatalogResponse",
	} {
		if e.Fields[k] != want {
			t.Errorf("field %s = %q, want %q", k, e.Fields[k], want)
		}
	}
	if e.Fields["latency_ms"] == "" {
		t.Error("latency_ms missing")
	}

	// The attempt left a correlated log line too.
	logs := tel.Logs().Entries(telemetry.Query{Conversation: conv, Kinds: []telemetry.Kind{telemetry.KindLog}})
	if len(logs) != 1 || !strings.Contains(logs[0].Message, "attempt inproc://a") {
		t.Fatalf("attempt log lines = %+v", logs)
	}
}

func TestExchangeJournalExistingConversationPreserved(t *testing.T) {
	svc := &scriptedService{}
	b, _, tel := telemetryBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})

	req := catalogReq(t) // carries ProcessInstanceID proc-1
	if _, err := b.Invoke(context.Background(), "vep:Retailer", req); err != nil {
		t.Fatal(err)
	}
	msgs := tel.Logs().Entries(telemetry.Query{Kinds: []telemetry.Kind{telemetry.KindMessage}})
	if len(msgs) != 1 || msgs[0].Conversation != "proc-1" {
		t.Fatalf("message entries = %+v, want conversation proc-1", msgs)
	}
}

func TestRecoveredExchangeJournalAndAudit(t *testing.T) {
	bad := &scriptedService{failFor: 1000}
	good := &scriptedService{}
	b, _, tel := telemetryBus(t, retryThenFailoverXML, map[string]*scriptedService{
		"inproc://a": bad,
		"inproc://b": good,
	}, VEPConfig{Selection: policy.SelectFirst})

	ctx, root := tel.Tracer.StartTrace(context.Background(), "gateway request")
	req := catalogReq(t)
	resp, err := b.Invoke(ctx, "vep:Retailer", req)
	if err != nil || resp.IsFault() {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	root.End()

	j := tel.Logs()
	msgs := j.Entries(telemetry.Query{Conversation: "proc-1", Kinds: []telemetry.Kind{telemetry.KindMessage}})
	if len(msgs) != 1 {
		t.Fatalf("message entries = %d, want 1", len(msgs))
	}
	e := msgs[0]
	// initial + 2 retries on a + failover attempt on b.
	if e.Fields["attempts"] != "4" || e.Fields["target"] != "inproc://b" || e.Fields["outcome"] != "ok" {
		t.Fatalf("recovered exchange fields = %+v", e.Fields)
	}
	if e.Trace != root.TraceID() || e.Trace == "" {
		t.Fatalf("message entry trace = %q, want %q", e.Trace, root.TraceID())
	}

	audits := j.Entries(telemetry.Query{Conversation: "proc-1", Kinds: []telemetry.Kind{telemetry.KindAudit}})
	var sawFault, sawAdaptation bool
	for _, a := range audits {
		switch {
		case a.Component == "monitor" && a.Fields["fault_type"] == "ServiceUnavailableFault":
			sawFault = true
		case a.Component == "bus" && a.Fields["policy"] == "retry-then-failover":
			sawAdaptation = true
			if a.Fields["failed_target"] != "inproc://a" || a.Fields["served_by"] != "inproc://b" {
				t.Fatalf("adaptation audit fields = %+v", a.Fields)
			}
		}
	}
	if !sawFault || !sawAdaptation {
		t.Fatalf("audit trail incomplete (fault=%v adaptation=%v): %+v", sawFault, sawAdaptation, audits)
	}

	// Attempt log lines share the trace of the exchange.
	logs := j.Entries(telemetry.Query{Trace: root.TraceID(), Kinds: []telemetry.Kind{telemetry.KindLog}})
	if len(logs) != 4 {
		t.Fatalf("attempt log lines = %d, want 4", len(logs))
	}
}

func TestFaultResponseCarriesConversation(t *testing.T) {
	svc := &scriptedService{failFor: 1000, errMode: "fault"}
	b, _, _ := telemetryBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})

	req := bareReq(t)
	resp, err := b.Invoke(context.Background(), "vep:Retailer", req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IsFault() {
		t.Fatal("expected fault response")
	}
	conv := ConversationIDOf(req)
	if conv == "" {
		t.Fatal("request conversation missing")
	}
	// The fault envelope came back from the service without headers;
	// the VEP propagated the conversation so callers can correlate it.
	if got := ConversationIDOf(resp); got != conv {
		t.Fatalf("fault response conversation = %q, want %q", got, conv)
	}
}

func TestTraceContextStampedOnDownstreamRequests(t *testing.T) {
	var seenTrace, seenSpan string
	svc := &scriptedService{respond: func(req *soap.Envelope) *soap.Envelope {
		seenTrace, seenSpan = soap.TraceContext(req)
		op := req.PayloadName().Local
		return soap.NewRequest(xmltree.New("urn:scm", op+"Response"))
	}}
	b, _, tel := telemetryBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})

	ctx, root := tel.Tracer.StartTrace(context.Background(), "gateway request")
	if _, err := b.Invoke(ctx, "vep:Retailer", catalogReq(t)); err != nil {
		t.Fatal(err)
	}
	root.End()

	if seenTrace != root.TraceID() || seenTrace == "" {
		t.Fatalf("downstream saw trace %q, want %q", seenTrace, root.TraceID())
	}
	if seenSpan == "" {
		t.Fatal("downstream saw no span ID")
	}
}
