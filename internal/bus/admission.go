package bus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/masc-project/masc/internal/clock"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/transport"
)

// admission is a per-VEP admission controller: at most maxInFlight
// invocations mediate concurrently, at most maxQueue more wait for a
// slot (FIFO), and everything beyond that is shed immediately. This is
// the overload self-protection the paper's Java wsBus lacked — its
// listener "does not scale well with high number of requests" (§3.2)
// because it admitted unbounded concurrent work.
type admission struct {
	maxInFlight  int
	maxQueue     int
	queueTimeout time.Duration
	clk          clock.Clock

	// queueDepth and inFlightGauge are nil-safe telemetry handles.
	queueDepth    *telemetry.Gauge
	inFlightGauge *telemetry.Gauge

	mu       sync.Mutex
	inFlight int
	waiters  []chan struct{} // FIFO; each is 1-buffered, granted a slot on send
}

// newAdmission builds a controller from a policy spec.
func newAdmission(spec *policy.AdmissionSpec, clk clock.Clock, queueDepth, inFlight *telemetry.Gauge) *admission {
	return &admission{
		maxInFlight:   spec.MaxInFlight,
		maxQueue:      spec.MaxQueue,
		queueTimeout:  spec.QueueTimeout,
		clk:           clk,
		queueDepth:    queueDepth,
		inFlightGauge: inFlight,
	}
}

// shedErr is the ServerBusy shed error; it unwraps to
// transport.ErrOverloaded so monitoring classifies it as a
// ServerBusyFault. reason is a metrics label ("queue_full",
// "queue_timeout").
type shedErr struct {
	vep    string
	reason string
}

func (e *shedErr) Error() string {
	return fmt.Sprintf("bus: VEP %s shed request (%s): %v", e.vep, e.reason, transport.ErrOverloaded)
}

func (e *shedErr) Unwrap() error { return transport.ErrOverloaded }

// shedReason extracts the shed reason label from an admission error.
func shedReason(err error) string {
	var se *shedErr
	if errors.As(err, &se) {
		return se.reason
	}
	return "unknown"
}

// acquire obtains a mediation slot or returns a shed error. The caller
// must release() exactly once after a nil return.
func (a *admission) acquire(ctx context.Context, vep string) error {
	a.mu.Lock()
	if a.inFlight < a.maxInFlight {
		a.inFlight++
		a.inFlightGauge.Set(float64(a.inFlight))
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		return &shedErr{vep: vep, reason: "queue_full"}
	}
	grant := make(chan struct{}, 1)
	a.waiters = append(a.waiters, grant)
	a.queueDepth.Set(float64(len(a.waiters)))
	a.mu.Unlock()

	var timeout <-chan time.Time
	if a.queueTimeout > 0 {
		timeout = a.clk.After(a.queueTimeout)
	}
	select {
	case <-grant:
		return nil
	case <-ctx.Done():
		if a.abandon(grant) {
			return fmt.Errorf("bus: VEP %s admission wait: %w", vep, ctx.Err())
		}
		// A grant raced the cancellation: the slot is ours to return.
		a.release()
		return ctx.Err()
	case <-timeout:
		if a.abandon(grant) {
			return &shedErr{vep: vep, reason: "queue_timeout"}
		}
		// Granted just in time — proceed.
		return nil
	}
}

// abandon removes a waiter from the queue, reporting whether it was
// still queued (false means a grant was already delivered).
func (a *admission) abandon(grant chan struct{}) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, w := range a.waiters {
		if w == grant {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			a.queueDepth.Set(float64(len(a.waiters)))
			return true
		}
	}
	return false
}

// release returns a slot, handing it to the oldest waiter if any.
func (a *admission) release() {
	a.mu.Lock()
	if len(a.waiters) > 0 {
		grant := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.queueDepth.Set(float64(len(a.waiters)))
		grant <- struct{}{}
	} else {
		a.inFlight--
		a.inFlightGauge.Set(float64(a.inFlight))
	}
	a.mu.Unlock()
}

// depths reports the current in-flight and queued counts (management
// API reporting).
func (a *admission) depths() (inFlight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight, len(a.waiters)
}
