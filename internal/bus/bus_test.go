package bus

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/wsdl"
	"github.com/masc-project/masc/internal/xmltree"
)

// scriptedService is a configurable fake downstream service.
type scriptedService struct {
	mu      sync.Mutex
	calls   int
	failFor int // first failFor calls fail
	errMode string
	delay   time.Duration
	respond func(req *soap.Envelope) *soap.Envelope
}

func (s *scriptedService) handler() transport.HandlerFunc {
	return func(_ context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		s.mu.Lock()
		s.calls++
		n := s.calls
		mode := s.errMode
		failFor := s.failFor
		delay := s.delay
		respond := s.respond
		s.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		if n <= failFor {
			switch mode {
			case "fault":
				return soap.NewFaultEnvelope(soap.FaultServer, "scripted failure"), nil
			default:
				return nil, &transport.UnavailableError{Endpoint: "scripted", Reason: "scripted outage"}
			}
		}
		if respond != nil {
			return respond(req), nil
		}
		op := req.PayloadName().Local
		return soap.NewRequest(xmltree.New("urn:scm", op+"Response")), nil
	}
}

func (s *scriptedService) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func catalogReq(t *testing.T) *soap.Envelope {
	t.Helper()
	p, err := xmltree.ParseString(`<getCatalog xmlns="urn:scm"><category>tv</category></getCatalog>`)
	if err != nil {
		t.Fatal(err)
	}
	env := soap.NewRequest(p)
	soap.SetProcessInstanceID(env, "proc-1")
	return env
}

func scmContract() *wsdl.Contract {
	c := wsdl.NewContract("Retailer", "urn:scm")
	c.AddOperation(wsdl.Operation{Name: "getCatalog"})
	c.AddOperation(wsdl.Operation{Name: "submitOrder"})
	return c
}

// testBus assembles a network with services and a bus with one VEP.
func testBus(t *testing.T, policyXML string, services map[string]*scriptedService, cfg VEPConfig) (*Bus, *VEP, *event.Recorder) {
	t.Helper()
	net := transport.NewNetwork()
	var addrs []string
	for addr, svc := range services {
		net.Register(addr, svc.handler())
		addrs = append(addrs, addr)
	}
	if cfg.Services == nil {
		// Deterministic registration order.
		for _, a := range []string{"inproc://a", "inproc://b", "inproc://c", "inproc://d"} {
			for _, have := range addrs {
				if have == a {
					cfg.Services = append(cfg.Services, a)
				}
			}
		}
	}
	repo := policy.NewRepository()
	if policyXML != "" {
		if _, err := repo.LoadXML(policyXML); err != nil {
			t.Fatal(err)
		}
	}
	ev := event.NewBus()
	var rec event.Recorder
	rec.Attach(ev)
	b := New(net, WithPolicyRepository(repo), WithEventBus(ev), WithSeed(7))
	if cfg.Name == "" {
		cfg.Name = "Retailer"
	}
	if cfg.Contract == nil {
		cfg.Contract = scmContract()
	}
	v, err := b.CreateVEP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b, v, &rec
}

func TestVEPBasicInvocation(t *testing.T) {
	svc := &scriptedService{}
	_, v, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PayloadName().Local != "getCatalogResponse" {
		t.Fatalf("payload = %v", resp.PayloadName())
	}
	if svc.count() != 1 {
		t.Fatalf("calls = %d", svc.count())
	}
}

func TestVEPNoServices(t *testing.T) {
	_, v, _ := testBus(t, "", nil, VEPConfig{Services: []string{}})
	_, err := v.Invoke(context.Background(), "", catalogReq(t))
	if !errors.Is(err, transport.ErrEndpointNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestVEPFaultWithoutPolicyPropagates(t *testing.T) {
	svc := &scriptedService{failFor: 1000}
	_, v, rec := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	_, err := v.Invoke(context.Background(), "", catalogReq(t))
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	faults := rec.OfType(event.TypeFaultDetected)
	if len(faults) != 1 || faults[0].FaultType != "ServiceUnavailableFault" {
		t.Fatalf("fault events = %+v", faults)
	}
}

const retryPolicyXML = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="retry3" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="3" delay="1ms"/></Actions>
    <BusinessValue amount="-2.5" currency="AUD" reason="recovery cost"/>
  </AdaptationPolicy>
</PolicyDocument>`

func TestRetryPolicyRecovers(t *testing.T) {
	svc := &scriptedService{failFor: 2} // initial + 1 retry fail, 2nd retry succeeds
	_, v, rec := testBus(t, retryPolicyXML, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsFault() {
		t.Fatal("fault after recovery")
	}
	if svc.count() != 3 {
		t.Fatalf("calls = %d, want 3 (1 + 2 retries)", svc.count())
	}
	adapts := rec.OfType(event.TypeAdaptationCompleted)
	if len(adapts) != 1 || adapts[0].PolicyName != "retry3" {
		t.Fatalf("adaptation events = %+v", adapts)
	}
	if adapts[0].Data["businessValueAmount"] != "-2.5" {
		t.Fatalf("business value lost: %+v", adapts[0].Data)
	}
	if adapts[0].ProcessInstanceID != "proc-1" {
		t.Fatal("instance correlation lost in adaptation event")
	}
}

func TestRetryPolicyExhausted(t *testing.T) {
	svc := &scriptedService{failFor: 1000}
	_, v, _ := testBus(t, retryPolicyXML, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	_, err := v.Invoke(context.Background(), "", catalogReq(t))
	if !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if svc.count() != 4 { // initial + 3 retries
		t.Fatalf("calls = %d, want 4", svc.count())
	}
}

const retryThenFailoverXML = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="retry-then-failover" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected"/>
    <Actions>
      <Retry maxAttempts="2" delay="1ms"/>
      <Substitute selection="first"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

func TestRetryThenFailover(t *testing.T) {
	// The paper's Table 1 policy: retry the faulty service, then route
	// to a different retailer.
	bad := &scriptedService{failFor: 1000}
	good := &scriptedService{}
	_, v, _ := testBus(t, retryThenFailoverXML, map[string]*scriptedService{
		"inproc://a": bad,
		"inproc://b": good,
	}, VEPConfig{Selection: policy.SelectFirst})
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	if bad.count() != 3 { // initial + 2 retries
		t.Fatalf("bad calls = %d", bad.count())
	}
	if good.count() != 1 {
		t.Fatalf("good calls = %d", good.count())
	}
}

func TestSubstituteRespectsMaxAlternatives(t *testing.T) {
	a := &scriptedService{failFor: 1000}
	b := &scriptedService{failFor: 1000}
	c := &scriptedService{failFor: 1000}
	d := &scriptedService{}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="sub" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected"/>
    <Actions><Substitute selection="first" maxAlternatives="2"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{
		"inproc://a": a, "inproc://b": b, "inproc://c": c, "inproc://d": d,
	}, VEPConfig{Selection: policy.SelectFirst})
	_, err := v.Invoke(context.Background(), "", catalogReq(t))
	// Only b and c tried (2 alternatives); d never reached → failure.
	if err == nil {
		t.Fatal("expected failure with maxAlternatives=2")
	}
	if d.count() != 0 {
		t.Fatalf("d called %d times despite maxAlternatives", d.count())
	}
	if b.count() != 1 || c.count() != 1 {
		t.Fatalf("alternatives tried = b:%d c:%d", b.count(), c.count())
	}
}

func TestConcurrentInvocationFirstWins(t *testing.T) {
	slow := &scriptedService{delay: 200 * time.Millisecond}
	fast := &scriptedService{}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="bcast" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected"/>
    <Actions><ConcurrentInvoke/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	// Primary target fails; broadcast then hits both.
	primary := &scriptedService{failFor: 1000}
	_, v, _ := testBus(t, xml, map[string]*scriptedService{
		"inproc://a": primary, "inproc://b": slow, "inproc://c": fast,
	}, VEPConfig{Selection: policy.SelectFirst})
	start := time.Now()
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	elapsed := time.Since(start)
	if err != nil || resp.IsFault() {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	// The broadcast includes the (failing) primary and both others;
	// the fast service should win well before the slow one finishes.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("broadcast took %v; first responder should win", elapsed)
	}
	if fast.count() != 1 {
		t.Fatalf("fast calls = %d", fast.count())
	}
}

func TestSkipPolicy(t *testing.T) {
	svc := &scriptedService{failFor: 1000}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="skip-logging" subject="vep:Retailer" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Payload.AttrValue("", "skipped") != "true" {
		t.Fatalf("skip response = %v", resp.Payload)
	}
}

func TestPolicyPriorityOrder(t *testing.T) {
	svc := &scriptedService{failFor: 1000}
	// High-priority skip should win over low-priority retry.
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="retry" subject="vep:Retailer" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="5" delay="1ms"/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="skip" subject="vep:Retailer" priority="9">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, rec := testBus(t, xml, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Payload.AttrValue("", "skipped") != "true" {
		t.Fatal("high-priority skip did not win")
	}
	if svc.count() != 1 {
		t.Fatalf("calls = %d; retry policy should not have run", svc.count())
	}
	adapts := rec.OfType(event.TypeAdaptationCompleted)
	if len(adapts) != 1 || adapts[0].PolicyName != "skip" {
		t.Fatalf("adaptations = %+v", adapts)
	}
}

func TestPolicyFaultTypeNarrowing(t *testing.T) {
	svc := &scriptedService{failFor: 1000, errMode: "fault"} // ServiceFailureFault
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="timeout-only" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected" faultType="TimeoutFault"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	// TimeoutFault policy must not trigger on ServiceFailureFault.
	if err == nil && resp != nil && resp.Payload != nil && resp.Payload.AttrValue("", "skipped") == "true" {
		t.Fatal("policy for TimeoutFault fired on ServiceFailureFault")
	}
}

func TestPolicyConditionOverMessage(t *testing.T) {
	svc := &scriptedService{failFor: 1000}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="skip-tv" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected"/>
    <Condition>//getCatalog/category = 'tv'</Condition>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})

	// Matching message: skipped.
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil || resp.Payload.AttrValue("", "skipped") != "true" {
		t.Fatalf("matching condition: resp=%v err=%v", resp, err)
	}

	// Non-matching message: policy skipped, fault propagates.
	p, _ := xmltree.ParseString(`<getCatalog xmlns="urn:scm"><category>radio</category></getCatalog>`)
	otherReq := soap.NewRequest(p)
	if _, err := v.Invoke(context.Background(), "", otherReq); err == nil {
		t.Fatal("non-matching condition still adapted")
	}
}

func TestPolicyConditionVariables(t *testing.T) {
	svc := &scriptedService{failFor: 1000}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="unavail-only" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected"/>
    <Condition>$faultType = 'ServiceUnavailableFault'</Condition>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil || resp.Payload.AttrValue("", "skipped") != "true" {
		t.Fatalf("$faultType condition failed: resp=%v err=%v", resp, err)
	}
}

func TestScopeLimitsPolicyToVEP(t *testing.T) {
	svc := &scriptedService{failFor: 1000}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="other-vep" subject="vep:Warehouse" priority="5">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err == nil {
		t.Fatal("policy scoped to another VEP was applied")
	}
}

func TestBusGatewayAddressing(t *testing.T) {
	svc := &scriptedService{}
	b, _, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	resp, err := b.Invoke(context.Background(), "vep:Retailer", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("gateway invoke: %v %v", resp, err)
	}
	if _, err := b.Invoke(context.Background(), "vep:Nope", catalogReq(t)); !errors.Is(err, ErrUnknownVEP) {
		t.Fatalf("err = %v", err)
	}
}

func TestBusProxyMode(t *testing.T) {
	bad := &scriptedService{failFor: 1000}
	good := &scriptedService{}
	b, _, _ := testBus(t, retryThenFailoverXML, map[string]*scriptedService{
		"inproc://a": bad, "inproc://b": good,
	}, VEPConfig{Selection: policy.SelectFirst})

	// Transparent proxy: the client addresses the real (faulty)
	// service; the bus mediates through the VEP and fails over.
	if err := b.Proxy("inproc://a", "Retailer"); err != nil {
		t.Fatal(err)
	}
	resp, err := b.Invoke(context.Background(), "inproc://a", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("proxied invoke: %v %v", resp, err)
	}
	if good.count() != 1 {
		t.Fatal("proxy did not fail over")
	}

	if err := b.Proxy("inproc://x", "Ghost"); !errors.Is(err, ErrUnknownVEP) {
		t.Fatalf("proxy to unknown VEP: %v", err)
	}
}

func TestBusPassthrough(t *testing.T) {
	svc := &scriptedService{}
	b, _, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	// Unmapped address goes straight to the downstream network.
	resp, err := b.Invoke(context.Background(), "inproc://a", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("passthrough: %v %v", resp, err)
	}
}

func TestDuplicateVEPRejected(t *testing.T) {
	b, _, _ := testBus(t, "", nil, VEPConfig{})
	if _, err := b.CreateVEP(VEPConfig{Name: "Retailer"}); !errors.Is(err, ErrDuplicateVEP) {
		t.Fatalf("err = %v", err)
	}
}

func TestVEPServiceRegistration(t *testing.T) {
	_, v, _ := testBus(t, "", nil, VEPConfig{Services: []string{}})
	v.RegisterService("inproc://x")
	v.RegisterService("inproc://x") // idempotent
	v.RegisterService("inproc://y")
	if got := v.Services(); len(got) != 2 {
		t.Fatalf("services = %v", got)
	}
	if !v.DeregisterService("inproc://x") {
		t.Fatal("deregister returned false")
	}
	if v.DeregisterService("inproc://x") {
		t.Fatal("double deregister returned true")
	}
}

func TestRoundRobinRotation(t *testing.T) {
	a := &scriptedService{}
	b2 := &scriptedService{}
	_, v, _ := testBus(t, "", map[string]*scriptedService{
		"inproc://a": a, "inproc://b": b2,
	}, VEPConfig{Selection: policy.SelectRoundRobin})
	for i := 0; i < 4; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	if a.count() != 2 || b2.count() != 2 {
		t.Fatalf("round robin spread = a:%d b:%d", a.count(), b2.count())
	}
}

func TestBestResponseTimeSelection(t *testing.T) {
	slow := &scriptedService{delay: 30 * time.Millisecond}
	fast := &scriptedService{}
	_, v, _ := testBus(t, "", map[string]*scriptedService{
		"inproc://a": slow, "inproc://b": fast,
	}, VEPConfig{Selection: policy.SelectBestResponseTime})
	// Warm up both targets (unknowns are explored first).
	for i := 0; i < 2; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	fastBefore := fast.count()
	for i := 0; i < 6; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	if fast.count()-fastBefore != 6 {
		t.Fatalf("best-QoS selection did not converge on the fast target: fast=%d slow=%d",
			fast.count(), slow.count())
	}
}

func TestMonitoringPreConditionBlocksRequest(t *testing.T) {
	svc := &scriptedService{}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <MonitoringPolicy name="needs-category" subject="vep:Retailer" operation="getCatalog">
    <PreCondition name="cat">//getCatalog/category != ''</PreCondition>
  </MonitoringPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	p, _ := xmltree.ParseString(`<getCatalog xmlns="urn:scm"><category/></getCatalog>`)
	_, err := v.Invoke(context.Background(), "", soap.NewRequest(p))
	if err == nil {
		t.Fatal("violating request was forwarded")
	}
	if svc.count() != 0 {
		t.Fatal("service reached despite pre-condition violation")
	}
}

func TestPostConditionViolationTriggersCorrection(t *testing.T) {
	// First service returns an empty catalog (post-condition violation),
	// substitution recovers from the second.
	empty := &scriptedService{respond: func(*soap.Envelope) *soap.Envelope {
		return soap.NewRequest(xmltree.New("urn:scm", "getCatalogResponse"))
	}}
	full := &scriptedService{respond: func(*soap.Envelope) *soap.Envelope {
		r := xmltree.New("urn:scm", "getCatalogResponse")
		r.Append(xmltree.NewText("urn:scm", "Product", "tv"))
		return soap.NewRequest(r)
	}}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <MonitoringPolicy name="nonempty" subject="vep:Retailer" operation="getCatalog">
    <PostCondition name="has-products">count(//Product) > 0</PostCondition>
  </MonitoringPolicy>
  <AdaptationPolicy name="failover" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected"/>
    <Actions><Substitute selection="first"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{
		"inproc://a": empty, "inproc://b": full,
	}, VEPConfig{Selection: policy.SelectFirst})
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Payload.ChildText("", "Product") != "tv" {
		t.Fatalf("post-condition correction failed: %v", resp.Payload)
	}
}

func TestPipelineModulesRun(t *testing.T) {
	svc := &scriptedService{}
	_, v, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	logger := NewMessageLogger(time.Now, 100)
	v.Pipeline().Append(logger)
	v.Pipeline().Append(&AdaptationModule{
		RequestTransforms:  []Transform{AddElement(xmltree.NewText("urn:scm", "priority", "gold"))},
		ResponseTransforms: []Transform{RenameElements(map[string]string{"getCatalogResponse": "catalogue"})},
	})

	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if resp.PayloadName().Local != "catalogue" {
		t.Fatalf("response transform missing: %v", resp.PayloadName())
	}
	entries := logger.Entries()
	if len(entries) != 2 {
		t.Fatalf("log entries = %d, want request+response", len(entries))
	}
	if entries[0].Direction != wsdl.Request || entries[1].Direction != wsdl.Response {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].InstanceID != "proc-1" {
		t.Fatal("logger lost instance correlation")
	}
}

func TestQoSRecordedPerTarget(t *testing.T) {
	svc := &scriptedService{failFor: 1}
	b, v, _ := testBus(t, retryPolicyXML, map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
		t.Fatal(err)
	}
	snap := b.Tracker().Snapshot("inproc://a")
	if snap.Invocations != 2 || snap.Failures != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestPreventiveDemotion(t *testing.T) {
	slow := &scriptedService{delay: 50 * time.Millisecond}
	fast := &scriptedService{}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <MonitoringPolicy name="sla" subject="vep:Retailer">
    <QoSThreshold metric="responseTime" maxResponse="10ms" minSamples="1"/>
  </MonitoringPolicy>
  <AdaptationPolicy name="prevent" subject="vep:Retailer" priority="5" kind="prevention">
    <OnEvent type="sla.violation"/>
    <Actions><Substitute selection="first"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{
		"inproc://a": slow, "inproc://b": fast,
	}, VEPConfig{Selection: policy.SelectFirst})

	// Hit the slow target once to record its latency.
	if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
		t.Fatal(err)
	}
	if slow.count() != 1 {
		t.Fatalf("slow calls = %d", slow.count())
	}
	vs := v.CheckQoSAndPrevent(time.Minute)
	if len(vs) == 0 {
		t.Fatal("SLA violation not detected")
	}
	// Subsequent traffic avoids the demoted target.
	for i := 0; i < 3; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	if slow.count() != 1 {
		t.Fatalf("demoted target still selected: %d calls", slow.count())
	}
	if fast.count() != 3 {
		t.Fatalf("fast calls = %d", fast.count())
	}
}

func TestReparsePolicySourceAblation(t *testing.T) {
	svc := &scriptedService{failFor: 1000}
	reparses := 0
	src := func() *policy.Repository {
		reparses++
		r := policy.NewRepository()
		if _, err := r.LoadXML(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="skip" subject="vep:R2" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`); err != nil {
			t.Error(err)
		}
		return r
	}
	net := transport.NewNetwork()
	net.Register("inproc://a", svc.handler())
	b := New(net, WithPolicySource(src))
	v, err := b.CreateVEP(VEPConfig{Name: "R2", Services: []string{"inproc://a"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	if reparses != 3 {
		t.Fatalf("policy source consulted %d times, want per-fault re-parse", reparses)
	}
}

func TestAddressHelpers(t *testing.T) {
	_, v, _ := testBus(t, "", nil, VEPConfig{})
	if v.Address() != "vep:Retailer" || v.Subject() != "vep:Retailer" || v.Name() != "Retailer" {
		t.Fatalf("address helpers: %q %q %q", v.Address(), v.Subject(), v.Name())
	}
	if v.Contract() == nil {
		t.Fatal("contract lost")
	}
}

func TestBusVEPsSorted(t *testing.T) {
	b, _, _ := testBus(t, "", nil, VEPConfig{})
	if _, err := b.CreateVEP(VEPConfig{Name: "Alpha"}); err != nil {
		t.Fatal(err)
	}
	got := b.VEPs()
	if len(got) != 2 || got[0] != "Alpha" || got[1] != "Retailer" {
		t.Fatalf("VEPs = %v", got)
	}
}

func TestOperationOfFallsBackToPayloadName(t *testing.T) {
	svc := &scriptedService{}
	_, v, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	// Unknown element not in contract: falls back to payload local name.
	p, _ := xmltree.ParseString(`<mysteryOp xmlns="urn:other"/>`)
	if _, err := v.Invoke(context.Background(), "", soap.NewRequest(p)); err != nil {
		t.Fatal(err)
	}
}

var _ = fmt.Sprintf
var _ = strings.TrimSpace

func TestVEPTimeoutClassifiedAndRecovered(t *testing.T) {
	// The Web services Invoker's timer raises a TimeoutFault (§3.1(2))
	// which a TimeoutFault-scoped policy then corrects by failover.
	slow := &scriptedService{delay: 200 * time.Millisecond}
	fast := &scriptedService{}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <AdaptationPolicy name="timeout-failover" subject="vep:Retailer" priority="5">
    <OnEvent type="fault.detected" faultType="TimeoutFault"/>
    <Actions><Substitute selection="first"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, rec := testBus(t, xml, map[string]*scriptedService{
		"inproc://a": slow, "inproc://b": fast,
	}, VEPConfig{Selection: policy.SelectFirst, InvokeTimeout: 30 * time.Millisecond})

	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	if fast.count() != 1 {
		t.Fatalf("failover target calls = %d", fast.count())
	}
	faults := rec.OfType(event.TypeFaultDetected)
	if len(faults) != 1 || faults[0].FaultType != "TimeoutFault" {
		t.Fatalf("fault events = %+v", faults)
	}
}
