package bus

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/store"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/transport"
)

func openBusStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStopDrainsPendingToDLQ is the regression test for the silent
// message drop on shutdown: Stop must move still-pending messages into
// the DLQ, count them, audit the drain, and fail their outcome
// channels.
func TestStopDrainsPendingToDLQ(t *testing.T) {
	inv := &flakyInvoker{failFor: 1000}
	reg := telemetry.NewRegistry()
	j := telemetry.NewJournal(0)
	q := NewRetryQueue(RetryQueueConfig{
		Invoker:      inv,
		Policy:       policy.RetryAction{MaxAttempts: 5, Delay: time.Hour},
		PollInterval: time.Millisecond,
		Metrics:      reg,
		Journal:      j,
	})

	done := q.Enqueue("inproc://log", logEnv())
	// First attempt fails; the hour-long backoff parks the message.
	waitFor(t, "first failed attempt", func() bool { return inv.count() >= 1 && q.Pending() == 1 })

	q.Stop()

	if q.Pending() != 0 {
		t.Fatalf("pending after stop = %d", q.Pending())
	}
	letters := q.DLQ().Letters()
	if len(letters) != 1 || letters[0].Endpoint != "inproc://log" || letters[0].Attempts != 1 {
		t.Fatalf("DLQ after stop = %+v", letters)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrDrained) {
			t.Fatalf("outcome = %v, want ErrDrained", err)
		}
	default:
		t.Fatal("outcome channel empty after drain")
	}
	var expo strings.Builder
	reg.WritePrometheus(&expo)
	if !strings.Contains(expo.String(), `masc_retryqueue_deliveries_total{outcome="drained"} 1`) {
		t.Fatalf("drained outcome not counted:\n%s", expo.String())
	}
	audits := j.Entries(telemetry.Query{Kinds: []telemetry.Kind{telemetry.KindAudit}})
	if len(audits) != 1 || audits[0].Fields["drained"] != "1" {
		t.Fatalf("audit entries = %+v", audits)
	}
	// Stop again: idempotent, nothing more drained.
	q.Stop()
	if q.DLQ().Len() != 1 {
		t.Fatal("second Stop drained again")
	}
}

// TestRetryEntriesSurviveCrash: a message parked in retry backoff when
// the middleware crashes re-enqueues from the store on the next start
// and is delivered, after which its durable record is gone.
func TestRetryEntriesSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	st1 := openBusStore(t, dir)
	inv1 := &flakyInvoker{failFor: 1000}
	q1 := NewRetryQueue(RetryQueueConfig{
		Invoker:      inv1,
		Policy:       policy.RetryAction{MaxAttempts: 5, Delay: time.Hour},
		PollInterval: time.Millisecond,
		Store:        st1,
	})
	q1.Enqueue("inproc://log", logEnv())
	waitFor(t, "message parked in backoff", func() bool { return inv1.count() >= 1 && q1.Pending() == 1 })

	// Crash: the store is abandoned first, so the in-memory shutdown
	// below cannot touch durable state.
	st1.Abandon()
	q1.Stop()

	st2 := openBusStore(t, dir)
	defer st2.Close()
	inv2 := &flakyInvoker{} // now succeeds
	q2 := NewRetryQueue(RetryQueueConfig{
		Invoker:      inv2,
		Policy:       policy.RetryAction{MaxAttempts: 5, Delay: time.Millisecond},
		PollInterval: time.Millisecond,
		Store:        st2,
	})
	defer q2.Stop()

	// The persisted entry re-enqueues (backoff collapsed) and delivers.
	waitFor(t, "redelivery after restart", func() bool { return inv2.count() >= 1 })
	waitFor(t, "retry record settled", func() bool { return len(st2.List(SpaceRetry)) == 0 })
	if q2.DLQ().Len() != 0 {
		t.Fatalf("recovered message dead-lettered: %+v", q2.DLQ().Letters())
	}
}

// TestDLQSurvivesRestart: dead letters written through the store reload
// on the next start, preserving endpoint, attempt count, and error.
func TestDLQSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st1 := openBusStore(t, dir)
	inv := &flakyInvoker{failFor: 1000}
	q1 := NewRetryQueue(RetryQueueConfig{
		Invoker:      inv,
		Policy:       policy.RetryAction{MaxAttempts: 1, Delay: time.Millisecond},
		PollInterval: time.Millisecond,
		Store:        st1,
	})
	done := q1.Enqueue("inproc://log", logEnv())
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected dead-letter outcome")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never settled")
	}
	q1.Stop()
	st1.Close()

	st2 := openBusStore(t, dir)
	defer st2.Close()
	q2 := NewRetryQueue(RetryQueueConfig{
		Invoker:      &flakyInvoker{},
		Policy:       policy.RetryAction{MaxAttempts: 1, Delay: time.Millisecond},
		PollInterval: time.Millisecond,
		Store:        st2,
	})
	defer q2.Stop()

	letters := q2.DLQ().Letters()
	if len(letters) != 1 {
		t.Fatalf("reloaded DLQ = %+v", letters)
	}
	l := letters[0]
	if l.Endpoint != "inproc://log" || l.Attempts != 2 || l.LastErr == "" {
		t.Fatalf("reloaded letter = %+v", l)
	}
	if l.Envelope == nil || l.Envelope.PayloadName().Local != "logEvent" {
		t.Fatalf("reloaded envelope = %+v", l.Envelope)
	}
	if len(st2.List(SpaceRetry)) != 0 {
		t.Fatal("dead-lettered message still has a retry record")
	}
}

// TestDLQEvictionDeletesDurableRecords: the capacity bound applies to
// the durable records too, not only the in-memory ring.
func TestDLQEvictionDeletesDurableRecords(t *testing.T) {
	dir := t.TempDir()
	st := openBusStore(t, dir)
	defer st.Close()

	dlq := NewDeadLetterQueue(2)
	dlq.bindStore(st)
	for i := 0; i < 3; i++ {
		dlq.Add(DeadLetter{Endpoint: "inproc://log", Envelope: logEnv(), Attempts: i + 1})
	}
	if dlq.Len() != 2 || dlq.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d", dlq.Len(), dlq.Dropped())
	}
	if got := len(st.List(SpaceDLQ)); got != 2 {
		t.Fatalf("durable DLQ records = %d, want 2", got)
	}
	// The survivors are the two newest letters.
	letters := dlq.Letters()
	if letters[0].Attempts != 2 || letters[1].Attempts != 3 {
		t.Fatalf("survivors = %+v", letters)
	}
}

// TestBusWithStoreWiresRetryQueue: the bus-level option reaches queues
// built through NewRetryQueueFor.
func TestBusWithStoreWiresRetryQueue(t *testing.T) {
	dir := t.TempDir()
	st := openBusStore(t, dir)
	defer st.Close()

	n := transport.NewNetwork()
	b := New(n, WithStore(st))
	q := b.NewRetryQueueFor(policy.RetryAction{MaxAttempts: 1, Delay: time.Hour}, time.Millisecond)
	q.Enqueue("inproc://nowhere", logEnv())
	waitFor(t, "durable retry record", func() bool { return len(st.List(SpaceRetry)) == 1 })
	q.Stop()
	// Clean stop: drained to the durable DLQ, retry space empty.
	if len(st.List(SpaceRetry)) != 0 || len(st.List(SpaceDLQ)) != 1 {
		t.Fatalf("retry=%d dlq=%d after stop",
			len(st.List(SpaceRetry)), len(st.List(SpaceDLQ)))
	}
}
