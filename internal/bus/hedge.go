package bus

import (
	"context"
	"time"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
)

// hedgeDelay derives the hedge trigger for a target from its tracked
// QoS: AfterFactor × p95, floored at MinDelay. It reports false until
// the target has enough successful samples for a trustworthy p95 —
// hedging on cold statistics would double traffic for no reason.
func (v *VEP) hedgeDelay(h *policy.HedgeSpec, target string) (time.Duration, bool) {
	tracker := v.bus.tracker
	if tracker == nil {
		return 0, false
	}
	snap := tracker.Snapshot(target)
	if snap.Invocations-snap.Failures < h.MinSamples || snap.P95Response <= 0 {
		return 0, false
	}
	d := time.Duration(float64(snap.P95Response) * h.AfterFactor)
	if d < h.MinDelay {
		d = h.MinDelay
	}
	return d, true
}

// attemptHedged performs the primary attempt with hedging: if the
// primary has not answered within its hedge delay, a second attempt is
// launched against the next-ranked healthy backend and the first
// healthy response wins ("making a copy of the message and modifying
// its route, then invoking multiple target services using concurrent
// invocation threads", §3.1(4) — applied preventively to tail latency
// rather than correctively after a fault). When hedging is disabled,
// unconfigurable, or there is no alternative backend, it degrades to a
// plain single attempt against order[0].
func (v *VEP) attemptHedged(ctx context.Context, order []string, req *soap.Envelope, op string) (*soap.Envelope, string, error) {
	primary := order[0]
	h := v.hedgeSpec()
	if h == nil || len(order) < 2 {
		resp, err := v.attempt(ctx, primary, req, op)
		return resp, primary, err
	}
	delay, ok := v.hedgeDelay(h, primary)
	if !ok {
		resp, err := v.attempt(ctx, primary, req, op)
		return resp, primary, err
	}

	backups := order[1:]
	if len(backups) > h.MaxHedges {
		backups = backups[:h.MaxHedges]
	}

	type result struct {
		resp   *soap.Envelope
		target string
		err    error
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan result, 1+len(backups))
	launch := func(target string) {
		// Each attempt stamps addressing and trace headers, so it needs
		// its own copy of the envelope.
		clone := req.Clone()
		addr := soap.ReadAddressing(clone)
		addr.To = target
		addr.Apply(clone)
		go func() {
			resp, err := v.attempt(cctx, target, clone, op)
			results <- result{resp: resp, target: target, err: err}
		}()
	}

	launch(primary)
	outstanding := 1
	timer := v.bus.clk.After(delay)
	var primaryResult *result
	for {
		select {
		case r := <-results:
			outstanding--
			if healthy(r.resp, r.err) {
				if r.target != primary {
					v.bus.met.hedges.With(v.name, "won").Inc()
					telemetry.SpanFromContext(ctx).Annotate(
						"hedge on %s won over %s", r.target, primary)
				}
				return r.resp, r.target, r.err
			}
			if r.target == primary {
				primaryResult = &r
			}
			if outstanding == 0 && len(backups) == 0 {
				// Everything launched has failed: surface the primary's
				// failure so corrective adaptation targets the right
				// backend (fall back to the last hedge failure when the
				// primary somehow never reported).
				if primaryResult != nil {
					return primaryResult.resp, primaryResult.target, primaryResult.err
				}
				return r.resp, r.target, r.err
			}
			if outstanding == 0 {
				// The primary failed fast, before the hedge delay
				// elapsed: don't burn a hedge — return and let the
				// corrective policies (retry, substitute) handle it.
				return r.resp, r.target, r.err
			}
		case <-timer:
			timer = nil
			if len(backups) > 0 {
				next := backups[0]
				backups = backups[1:]
				v.bus.met.hedges.With(v.name, "launched").Inc()
				span := telemetry.SpanFromContext(ctx)
				span.Annotate(
					"hedging %s after %v (p95 policy) with %s", primary, delay, next)
				if dec := v.bus.decisions; dec != nil {
					dec.Record(decision.Record{
						Time:         v.bus.clk.Now(),
						Site:         decision.SiteBus,
						PolicyType:   "protection",
						Policy:       v.protectionName(),
						Subject:      v.Subject(),
						Operation:    op,
						Conversation: ConversationIDOf(req),
						Trace:        span.TraceID(),
						Span:         span.SpanID(),
						Trigger:      "hedge",
						Verdict:      decision.VerdictMatched,
						Action:       "hedge",
						Outcome:      "launched:" + next,
						Inputs: map[string]string{
							"primary": primary,
							"hedge":   next,
							"delay":   delay.String(),
						},
					})
				}
				launch(next)
				outstanding++
				if len(backups) > 0 {
					timer = v.bus.clk.After(delay)
				}
			}
		case <-ctx.Done():
			return nil, primary, ctx.Err()
		}
	}
}
