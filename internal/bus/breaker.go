package bus

import (
	"strconv"
	"sync"
	"time"

	"github.com/masc-project/masc/internal/clock"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/telemetry/decision"
)

// Breaker states, exported through metrics (gauge value) and the
// management API (names).
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breakerStateName names a state for the management API.
func breakerStateName(s int) string {
	switch s {
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// breakerState is one backend's circuit.
type breakerState struct {
	state       int
	consecutive int       // consecutive classified faults while closed
	openUntil   time.Time // when open, the end of the cooldown
	probing     bool      // a half-open probe is outstanding
}

// breakerGroup holds per-backend circuit breakers for one VEP: after
// FailureThreshold consecutive classified faults a backend's breaker
// opens and selection skips it *before* the next request pays a
// timeout discovering the same outage; after the cooldown one
// half-open probe decides whether it closes again. This moves the
// paper's corrective reaction (adapt after a fault is classified) in
// front of selection, so broken backends stop absorbing traffic.
type breakerGroup struct {
	vep       string
	polName   string
	threshold int
	cooldown  time.Duration
	clk       clock.Clock
	met       *busMetrics
	dec       *decision.Recorder

	mu sync.Mutex
	m  map[string]*breakerState
}

func newBreakerGroup(vep, polName string, spec *policy.BreakerSpec, clk clock.Clock, met *busMetrics, dec *decision.Recorder) *breakerGroup {
	return &breakerGroup{
		vep:       vep,
		polName:   polName,
		threshold: spec.FailureThreshold,
		cooldown:  spec.Cooldown,
		clk:       clk,
		met:       met,
		dec:       dec,
		m:         make(map[string]*breakerState),
	}
}

// recordTransition emits one provenance record for a breaker state
// change — the protection policy "deciding" to open, probe, or close a
// backend's circuit. Only transitions record, never steady state, so
// the cost is bounded by outages rather than traffic.
func (g *breakerGroup) recordTransition(target, action string, verdict decision.Verdict, consecutive int) {
	if g.dec == nil {
		return
	}
	g.dec.Record(decision.Record{
		Time:       g.clk.Now(),
		Site:       decision.SiteBus,
		PolicyType: "protection",
		Policy:     g.polName,
		Subject:    SubjectPrefix + g.vep,
		Trigger:    "breaker",
		Verdict:    verdict,
		Action:     action,
		Outcome:    "target:" + target,
		Inputs: map[string]string{
			"target":      target,
			"consecutive": strconv.Itoa(consecutive),
			"threshold":   strconv.Itoa(g.threshold),
			"cooldown":    g.cooldown.String(),
		},
	})
}

func (g *breakerGroup) get(target string) *breakerState {
	s := g.m[target]
	if s == nil {
		s = &breakerState{}
		g.m[target] = s
	}
	return s
}

// selectable reports whether the target may receive traffic right now:
// closed breakers always, open ones only once their cooldown has
// elapsed and no probe is outstanding.
func (g *breakerGroup) selectable(target string) bool {
	now := g.clk.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.m[target]
	switch {
	case s == nil || s.state == breakerClosed:
		return true
	case s.state == breakerOpen:
		return !now.Before(s.openUntil) && !s.probing
	default: // half-open
		return !s.probing
	}
}

// markAttempt notes that the target is about to be attempted; an open
// breaker past its cooldown transitions to half-open with this attempt
// as its probe.
func (g *breakerGroup) markAttempt(target string) {
	now := g.clk.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.m[target]
	if s == nil || s.state == breakerClosed {
		return
	}
	if s.state == breakerOpen && !now.Before(s.openUntil) {
		s.state = breakerHalfOpen
		g.met.breakerState.With(g.vep, target).Set(breakerHalfOpen)
		g.recordTransition(target, "probe", decision.VerdictMatched, s.consecutive)
	}
	if s.state == breakerHalfOpen {
		s.probing = true
	}
}

// record feeds one classified attempt outcome into the target's
// breaker.
func (g *breakerGroup) record(target string, healthy bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.get(target)
	s.probing = false
	if healthy {
		if s.state != breakerClosed {
			g.met.breakerState.With(g.vep, target).Set(breakerClosed)
			g.recordTransition(target, "close", decision.VerdictPassed, s.consecutive)
		}
		s.state = breakerClosed
		s.consecutive = 0
		return
	}
	s.consecutive++
	// A failed half-open probe re-opens immediately; a closed breaker
	// opens once the consecutive-fault threshold is reached.
	if s.state == breakerHalfOpen || s.consecutive >= g.threshold {
		if s.state != breakerOpen {
			g.met.breakerTrips.With(g.vep, target).Inc()
			g.recordTransition(target, "open", decision.VerdictMatched, s.consecutive)
		}
		s.state = breakerOpen
		s.openUntil = g.clk.Now().Add(g.cooldown)
		s.consecutive = 0
		g.met.breakerState.With(g.vep, target).Set(breakerOpen)
	}
}

// states snapshots every tracked backend's state name (management API).
func (g *breakerGroup) states() map[string]string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]string, len(g.m))
	for target, s := range g.m {
		out[target] = breakerStateName(s.state)
	}
	return out
}
