package bus

import (
	"sort"
	"sync"
	"time"

	"github.com/masc-project/masc/internal/soap"
)

// Conversation is one tracked multi-message exchange — the VEP's
// "conversation management" middleware service (§3.1). Messages are
// correlated by the MASC conversation header, falling back to the
// process-instance correlation ID.
type Conversation struct {
	// ID correlates the conversation's messages.
	ID string
	// Started is when the first message was observed.
	Started time.Time
	// LastActivity is when the most recent message was observed.
	LastActivity time.Time
	// Requests and Responses count observed messages per direction.
	Requests  int
	Responses int
	// Operations lists the distinct operations seen, sorted.
	Operations []string
	// Faulted reports whether any response in the conversation carried
	// a fault.
	Faulted bool
}

// ConversationHeader is the MASC header local name carrying an
// explicit conversation ID.
const ConversationHeader = soap.ConversationHeader

// SetConversationID stamps an explicit conversation ID onto a message.
func SetConversationID(env *soap.Envelope, id string) {
	soap.SetConversationID(env, id)
}

// ConversationIDOf extracts the conversation ID: the explicit header
// if present, else the process-instance correlation.
func ConversationIDOf(env *soap.Envelope) string {
	return soap.ConversationID(env)
}

// ConversationManager tracks conversations flowing through a pipeline.
// It implements Module; attach it to a VEP's pipeline. Conversations
// idle past the timeout are dropped by Expire (call it periodically or
// before reads). ConversationManager is safe for concurrent use.
type ConversationManager struct {
	now     func() time.Time
	timeout time.Duration

	mu            sync.Mutex
	conversations map[string]*Conversation
}

var _ Module = (*ConversationManager)(nil)

// NewConversationManager builds a manager; idle conversations expire
// after timeout (0 means never).
func NewConversationManager(now func() time.Time, timeout time.Duration) *ConversationManager {
	return &ConversationManager{
		now:           now,
		timeout:       timeout,
		conversations: make(map[string]*Conversation),
	}
}

// ModuleName implements Module.
func (*ConversationManager) ModuleName() string { return "ConversationManager" }

// ProcessRequest implements Module.
func (m *ConversationManager) ProcessRequest(mc *MessageContext) error {
	m.observe(mc, mc.Request, true)
	return nil
}

// ProcessResponse implements Module.
func (m *ConversationManager) ProcessResponse(mc *MessageContext) error {
	m.observe(mc, mc.Response, false)
	return nil
}

func (m *ConversationManager) observe(mc *MessageContext, env *soap.Envelope, request bool) {
	if env == nil {
		return
	}
	id := ConversationIDOf(env)
	if id == "" {
		return
	}
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.conversations[id]
	if c == nil {
		c = &Conversation{ID: id, Started: now}
		m.conversations[id] = c
	}
	c.LastActivity = now
	if request {
		c.Requests++
	} else {
		c.Responses++
		if env.IsFault() {
			c.Faulted = true
		}
	}
	if mc.Operation != "" {
		i := sort.SearchStrings(c.Operations, mc.Operation)
		if i == len(c.Operations) || c.Operations[i] != mc.Operation {
			c.Operations = append(c.Operations, "")
			copy(c.Operations[i+1:], c.Operations[i:])
			c.Operations[i] = mc.Operation
		}
	}
}

// Get returns a copy of the conversation, if tracked.
func (m *ConversationManager) Get(id string) (Conversation, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.conversations[id]
	if !ok {
		return Conversation{}, false
	}
	return copyConversation(c), true
}

// Active returns all tracked conversations sorted by ID.
func (m *ConversationManager) Active() []Conversation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Conversation, 0, len(m.conversations))
	for _, c := range m.conversations {
		out = append(out, copyConversation(c))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Expire drops conversations idle past the timeout and returns how
// many were removed.
func (m *ConversationManager) Expire() int {
	if m.timeout <= 0 {
		return 0
	}
	cutoff := m.now().Add(-m.timeout)
	m.mu.Lock()
	defer m.mu.Unlock()
	removed := 0
	for id, c := range m.conversations {
		if c.LastActivity.Before(cutoff) {
			delete(m.conversations, id)
			removed++
		}
	}
	return removed
}

// End explicitly removes a finished conversation.
func (m *ConversationManager) End(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.conversations[id]; !ok {
		return false
	}
	delete(m.conversations, id)
	return true
}

func copyConversation(c *Conversation) Conversation {
	cp := *c
	cp.Operations = append([]string(nil), c.Operations...)
	return cp
}
