package bus

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/telemetry"
)

// exchange carries per-invocation bookkeeping through the mediation
// context. The attempt counter spans the initial attempt, retries,
// failovers, and concurrent-invocation goroutines, so the journal can
// report how much work one gateway exchange cost.
type exchange struct {
	attempts atomic.Int32
}

type exchangeCtxKey struct{}

func withExchange(ctx context.Context, ex *exchange) context.Context {
	return context.WithValue(ctx, exchangeCtxKey{}, ex)
}

func exchangeFrom(ctx context.Context) *exchange {
	ex, _ := ctx.Value(exchangeCtxKey{}).(*exchange)
	return ex
}

// summarize names an envelope for journal fields: the payload element,
// or the fault string for fault envelopes.
func summarize(env *soap.Envelope) string {
	if env == nil {
		return ""
	}
	if env.IsFault() {
		return "Fault: " + env.Fault.String
	}
	return env.PayloadName().Local
}

// journalExchange records one gateway-handled SOAP exchange into the
// message journal (KindMessage): request/response/fault summaries,
// VEP, serving backend, attempt count, and end-to-end latency, all
// correlated by conversation and trace.
func (v *VEP) journalExchange(span *telemetry.Span, conv, op, target, outcome string,
	dur time.Duration, attempts int32, req, resp *soap.Envelope, err error) {

	j := v.bus.journal
	if j == nil {
		return
	}
	level := telemetry.LevelInfo
	fields := map[string]string{
		"vep":        v.name,
		"operation":  op,
		"target":     target,
		"outcome":    outcome,
		"attempts":   strconv.Itoa(int(attempts)),
		"latency_ms": strconv.FormatFloat(float64(dur)/float64(time.Millisecond), 'f', 3, 64),
		"request":    summarize(req),
	}
	switch {
	case err != nil:
		level = telemetry.LevelError
		fields["error"] = err.Error()
	case resp != nil && resp.IsFault():
		level = telemetry.LevelWarn
		fields["response"] = summarize(resp)
	case resp != nil:
		fields["response"] = summarize(resp)
	}
	j.Record(telemetry.Entry{
		Level:        level,
		Kind:         telemetry.KindMessage,
		Component:    "bus",
		Message:      fmt.Sprintf("%s %s via %s: %s", v.name, op, target, outcome),
		Conversation: conv,
		Trace:        span.TraceID(),
		Span:         span.SpanID(),
		Fields:       fields,
	})
}

// auditAdaptation records the Adaptation Manager's decision — which
// policy handled which classified fault, and the action's serving
// target — into the audit trail (KindAudit).
func (v *VEP) auditAdaptation(span *telemetry.Span, conv, policyName, faultType, op, failedTarget, servedBy string) {
	j := v.bus.journal
	if j == nil {
		return
	}
	j.Record(telemetry.Entry{
		Level:     telemetry.LevelWarn,
		Kind:      telemetry.KindAudit,
		Component: "bus",
		Message: fmt.Sprintf("adaptation policy %s handled %s on %s/%s",
			policyName, faultType, v.name, op),
		Conversation: conv,
		Trace:        span.TraceID(),
		Span:         span.SpanID(),
		Fields: map[string]string{
			"vep":           v.name,
			"policy":        policyName,
			"fault_type":    faultType,
			"operation":     op,
			"failed_target": failedTarget,
			"served_by":     servedBy,
		},
	})
}

// auditPrevention records a preventive/optimizing SLA adaptation (a
// demotion or a selection-strategy switch) into the audit trail.
func (v *VEP) auditPrevention(policyName, faultType, target, action string) {
	j := v.bus.journal
	if j == nil {
		return
	}
	j.Record(telemetry.Entry{
		Level:     telemetry.LevelWarn,
		Kind:      telemetry.KindAudit,
		Component: "bus",
		Message: fmt.Sprintf("preventive policy %s: %s %s on %s",
			policyName, action, target, v.name),
		Fields: map[string]string{
			"vep":        v.name,
			"policy":     policyName,
			"fault_type": faultType,
			"target":     target,
			"action":     action,
		},
	})
}
