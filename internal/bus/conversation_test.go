package bus

import (
	"context"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/xmltree"
)

func convReq(op, convID string) *MessageContext {
	env := soap.NewRequest(xmltree.New("urn:t", op))
	if convID != "" {
		SetConversationID(env, convID)
	}
	return &MessageContext{Operation: op, Request: env, Meta: map[string]string{}}
}

func TestConversationTracking(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	m := NewConversationManager(clock, time.Minute)

	mc := convReq("getQuote", "conv-1")
	if err := m.ProcessRequest(mc); err != nil {
		t.Fatal(err)
	}
	mc.Response = soap.NewRequest(xmltree.New("urn:t", "getQuoteResponse"))
	SetConversationID(mc.Response, "conv-1")
	if err := m.ProcessResponse(mc); err != nil {
		t.Fatal(err)
	}
	mc2 := convReq("placeOrder", "conv-1")
	m.ProcessRequest(mc2) //nolint:errcheck

	c, ok := m.Get("conv-1")
	if !ok {
		t.Fatal("conversation not tracked")
	}
	if c.Requests != 2 || c.Responses != 1 {
		t.Fatalf("counts = %d/%d", c.Requests, c.Responses)
	}
	if len(c.Operations) != 2 || c.Operations[0] != "getQuote" || c.Operations[1] != "placeOrder" {
		t.Fatalf("operations = %v", c.Operations)
	}
	if c.Faulted {
		t.Fatal("healthy conversation marked faulted")
	}
}

func TestConversationFaultFlag(t *testing.T) {
	m := NewConversationManager(time.Now, 0)
	mc := convReq("op", "conv-f")
	m.ProcessRequest(mc) //nolint:errcheck
	mc.Response = soap.NewFaultEnvelope(soap.FaultServer, "boom")
	SetConversationID(mc.Response, "conv-f")
	m.ProcessResponse(mc) //nolint:errcheck
	c, _ := m.Get("conv-f")
	if !c.Faulted {
		t.Fatal("fault not flagged")
	}
}

func TestConversationFallsBackToInstanceID(t *testing.T) {
	m := NewConversationManager(time.Now, 0)
	env := soap.NewRequest(xmltree.New("urn:t", "op"))
	soap.SetProcessInstanceID(env, "proc-9")
	m.ProcessRequest(&MessageContext{Operation: "op", Request: env}) //nolint:errcheck
	if _, ok := m.Get("proc-9"); !ok {
		t.Fatal("instance-correlated conversation not tracked")
	}
}

func TestConversationUncorrelatedIgnored(t *testing.T) {
	m := NewConversationManager(time.Now, 0)
	m.ProcessRequest(convReq("op", "")) //nolint:errcheck
	if got := len(m.Active()); got != 0 {
		t.Fatalf("active = %d", got)
	}
}

func TestConversationExpiry(t *testing.T) {
	now := time.Now()
	m := NewConversationManager(func() time.Time { return now }, time.Minute)
	m.ProcessRequest(convReq("op", "old")) //nolint:errcheck
	now = now.Add(2 * time.Minute)
	m.ProcessRequest(convReq("op", "fresh")) //nolint:errcheck

	if removed := m.Expire(); removed != 1 {
		t.Fatalf("expired = %d", removed)
	}
	if _, ok := m.Get("old"); ok {
		t.Fatal("stale conversation survived")
	}
	if _, ok := m.Get("fresh"); !ok {
		t.Fatal("fresh conversation expired")
	}

	// Timeout 0: never expires.
	m0 := NewConversationManager(func() time.Time { return now }, 0)
	m0.ProcessRequest(convReq("op", "c")) //nolint:errcheck
	if m0.Expire() != 0 {
		t.Fatal("zero-timeout manager expired a conversation")
	}
}

func TestConversationEnd(t *testing.T) {
	m := NewConversationManager(time.Now, 0)
	m.ProcessRequest(convReq("op", "c1")) //nolint:errcheck
	if !m.End("c1") {
		t.Fatal("End returned false")
	}
	if m.End("c1") {
		t.Fatal("double End returned true")
	}
}

func TestConversationActiveSortedAndCopied(t *testing.T) {
	m := NewConversationManager(time.Now, 0)
	m.ProcessRequest(convReq("op", "b")) //nolint:errcheck
	m.ProcessRequest(convReq("op", "a")) //nolint:errcheck
	active := m.Active()
	if len(active) != 2 || active[0].ID != "a" || active[1].ID != "b" {
		t.Fatalf("active = %+v", active)
	}
	active[0].Operations = append(active[0].Operations, "mutated")
	again, _ := m.Get("a")
	for _, op := range again.Operations {
		if op == "mutated" {
			t.Fatal("Active exposed internal state")
		}
	}
}

func TestConversationThroughVEPPipeline(t *testing.T) {
	svc := &scriptedService{}
	_, v, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	cm := NewConversationManager(time.Now, time.Minute)
	v.Pipeline().Append(cm)

	for i := 0; i < 3; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	c, ok := cm.Get("proc-1") // catalogReq correlates to proc-1
	if !ok {
		t.Fatal("pipeline conversation not tracked")
	}
	if c.Requests != 3 || c.Responses != 3 {
		t.Fatalf("counts = %d/%d", c.Requests, c.Responses)
	}
}
