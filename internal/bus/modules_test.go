package bus

import (
	"context"
	"errors"
	"regexp"
	"sync"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/qos"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/xmltree"
	"github.com/masc-project/masc/internal/xpath"
)

func mcWith(t *testing.T, reqDoc string) *MessageContext {
	t.Helper()
	p, err := xmltree.ParseString(reqDoc)
	if err != nil {
		t.Fatal(err)
	}
	return &MessageContext{
		VEP:       "Retailer",
		Operation: "getCatalog",
		Request:   soap.NewRequest(p),
		Meta:      map[string]string{},
	}
}

func TestPipelineOrdering(t *testing.T) {
	var order []string
	mk := func(name string) Module {
		return &AdaptationModule{
			Name: name,
			RequestTransforms: []Transform{func(*xmltree.Element) error {
				order = append(order, "req:"+name)
				return nil
			}},
			ResponseTransforms: []Transform{func(*xmltree.Element) error {
				order = append(order, "resp:"+name)
				return nil
			}},
		}
	}
	var p Pipeline
	p.Append(mk("A"))
	p.Append(mk("B"))

	mc := mcWith(t, `<getCatalog/>`)
	if err := p.RunRequest(mc); err != nil {
		t.Fatal(err)
	}
	mc.Response = soap.NewRequest(xmltree.New("", "resp"))
	if err := p.RunResponse(mc); err != nil {
		t.Fatal(err)
	}
	want := []string{"req:A", "req:B", "resp:B", "resp:A"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPipelineErrorAborts(t *testing.T) {
	var p Pipeline
	p.Append(&AdaptationModule{
		Name: "boom",
		RequestTransforms: []Transform{func(*xmltree.Element) error {
			return errors.New("transform failed")
		}},
	})
	mc := mcWith(t, `<getCatalog/>`)
	err := p.RunRequest(mc)
	if err == nil || !errorsContains(err, "boom") {
		t.Fatalf("err = %v", err)
	}
}

func errorsContains(err error, substr string) bool {
	return err != nil && regexp.MustCompile(regexp.QuoteMeta(substr)).MatchString(err.Error())
}

func TestTransforms(t *testing.T) {
	payload, _ := xmltree.ParseString(`<order><oldName>1</oldName><drop>x</drop></order>`)

	if err := RenameElements(map[string]string{"oldName": "newName"})(payload); err != nil {
		t.Fatal(err)
	}
	if payload.Child("", "newName") == nil {
		t.Fatal("rename failed")
	}

	if err := AddElement(xmltree.NewText("", "added", "v"))(payload); err != nil {
		t.Fatal(err)
	}
	if payload.ChildText("", "added") != "v" {
		t.Fatal("add failed")
	}

	if err := RemoveElements("drop")(payload); err != nil {
		t.Fatal(err)
	}
	if payload.Child("", "drop") != nil {
		t.Fatal("remove failed")
	}

	enrich := EnrichFrom(func(p *xmltree.Element) (*xmltree.Element, error) {
		return xmltree.NewText("", "rate", "1.5"), nil
	})
	if err := enrich(payload); err != nil {
		t.Fatal(err)
	}
	if payload.ChildText("", "rate") != "1.5" {
		t.Fatal("enrich failed")
	}

	failing := EnrichFrom(func(*xmltree.Element) (*xmltree.Element, error) {
		return nil, errors.New("source down")
	})
	if err := failing(payload); err == nil {
		t.Fatal("enrich error swallowed")
	}
}

func TestValidatorModule(t *testing.T) {
	v := &ValidatorModule{Contract: scmContract()}
	ok := mcWith(t, `<getCatalog xmlns="urn:scm"><category>tv</category></getCatalog>`)
	if err := v.ProcessRequest(ok); err != nil {
		t.Fatal(err)
	}
	bad := mcWith(t, `<bogus xmlns="urn:scm"/>`)
	if err := v.ProcessRequest(bad); err == nil {
		t.Fatal("invalid request passed validation")
	}
	// Nil response passes.
	if err := v.ProcessResponse(ok); err != nil {
		t.Fatal(err)
	}
}

func TestConditionalModuleXPathRule(t *testing.T) {
	inner := &AdaptationModule{
		Name: "enrich",
		RequestTransforms: []Transform{
			AddElement(xmltree.NewText("", "vip", "true")),
		},
		ResponseTransforms: []Transform{
			AddElement(xmltree.NewText("", "vipResp", "true")),
		},
	}
	cond := &ConditionalModule{
		Rule:  &XPathRule{Expr: xpath.MustCompile("//category = 'tv'")},
		Inner: inner,
	}

	applies := mcWith(t, `<getCatalog><category>tv</category></getCatalog>`)
	if err := cond.ProcessRequest(applies); err != nil {
		t.Fatal(err)
	}
	if applies.Request.Payload.Child("", "vip") == nil {
		t.Fatal("conditional module did not apply")
	}
	applies.Response = soap.NewRequest(xmltree.New("", "resp"))
	if err := cond.ProcessResponse(applies); err != nil {
		t.Fatal(err)
	}
	if applies.Response.Payload.Child("", "vipResp") == nil {
		t.Fatal("response stage skipped despite request applying")
	}

	skips := mcWith(t, `<getCatalog><category>radio</category></getCatalog>`)
	if err := cond.ProcessRequest(skips); err != nil {
		t.Fatal(err)
	}
	if skips.Request.Payload.Child("", "vip") != nil {
		t.Fatal("conditional module applied when rule false")
	}
	skips.Response = soap.NewRequest(xmltree.New("", "resp"))
	if err := cond.ProcessResponse(skips); err != nil {
		t.Fatal(err)
	}
	if skips.Response.Payload.Child("", "vipResp") != nil {
		t.Fatal("response stage ran despite request not applying")
	}
}

func TestRegexRule(t *testing.T) {
	r := &RegexRule{Pattern: regexp.MustCompile(`CustomerID>C\d+<`)}
	match := soap.NewRequest(xmltree.NewText("", "CustomerID", "C42"))
	ok, err := r.Applies(match)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	miss := soap.NewRequest(xmltree.NewText("", "CustomerID", "nope"))
	ok, err = r.Applies(miss)
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if ok, _ := r.Applies(nil); ok {
		t.Fatal("nil envelope matched")
	}
}

func TestMessageLoggerBounds(t *testing.T) {
	l := NewMessageLogger(time.Now, 2)
	for i := 0; i < 5; i++ {
		l.ProcessRequest(mcWith(t, `<getCatalog/>`)) //nolint:errcheck
	}
	if got := len(l.Entries()); got != 2 {
		t.Fatalf("entries = %d, want bounded 2", got)
	}
}

func TestAggregator(t *testing.T) {
	a := NewAggregator(3, "urn:scm", "batch")
	p1, _ := xmltree.ParseString(`<logEvent>one</logEvent>`)
	p2, _ := xmltree.ParseString(`<logEvent>two</logEvent>`)
	p3, _ := xmltree.ParseString(`<logEvent>three</logEvent>`)

	if _, full := a.Add(p1); full {
		t.Fatal("flushed too early")
	}
	if a.Pending() != 1 {
		t.Fatalf("pending = %d", a.Pending())
	}
	a.Add(p2)
	merged, full := a.Add(p3)
	if !full {
		t.Fatal("batch of 3 did not flush")
	}
	if len(merged.Children) != 3 || merged.Name.Local != "batch" {
		t.Fatalf("merged = %v", merged)
	}
	if a.Pending() != 0 {
		t.Fatal("buffer not cleared")
	}

	// Split inverts aggregation.
	parts := Split(merged)
	if len(parts) != 3 || parts[0].Text != "one" || parts[2].Text != "three" {
		t.Fatalf("split = %v", parts)
	}

	// Flush drains a partial batch.
	a.Add(p1)
	if got := a.Flush(); got == nil || len(got.Children) != 1 {
		t.Fatalf("flush = %v", got)
	}
	if a.Flush() != nil {
		t.Fatal("empty flush should be nil")
	}
}

// --- selection ---

func TestSelectorsOrder(t *testing.T) {
	candidates := []string{"a", "b", "c"}

	first := newSelector(policy.SelectFirst, nil, 1, 1)
	if got := first.order(candidates); got[0] != "a" || len(got) != 3 {
		t.Fatalf("first = %v", got)
	}

	rr := newSelector(policy.SelectRoundRobin, nil, 1, 1)
	o1 := rr.order(candidates)
	o2 := rr.order(candidates)
	o3 := rr.order(candidates)
	o4 := rr.order(candidates)
	if o1[0] != "a" || o2[0] != "b" || o3[0] != "c" || o4[0] != "a" {
		t.Fatalf("round robin heads = %s %s %s %s", o1[0], o2[0], o3[0], o4[0])
	}
	if len(o2) != 3 || o2[1] != "c" || o2[2] != "a" {
		t.Fatalf("rotation = %v", o2)
	}

	rnd := newSelector(policy.SelectRandom, nil, 1, 42)
	got := rnd.order(candidates)
	if len(got) != 3 {
		t.Fatalf("random = %v", got)
	}
	// Deterministic per seed.
	rnd2 := newSelector(policy.SelectRandom, nil, 1, 42)
	got2 := rnd2.order(candidates)
	for i := range got {
		if got[i] != got2[i] {
			t.Fatal("random selector not deterministic per seed")
		}
	}
}

func TestBestQoSSelectorOrdering(t *testing.T) {
	tracker := qos.NewTracker(0)
	tracker.Record("slow", 50*time.Millisecond, true)
	tracker.Record("fast", 5*time.Millisecond, true)

	sel := newSelector(policy.SelectBestResponseTime, tracker, 1, 1)
	got := sel.order([]string{"slow", "fast", "unknown"})
	// Unknown explored first, then fastest known.
	if got[0] != "unknown" || got[1] != "fast" || got[2] != "slow" {
		t.Fatalf("order = %v", got)
	}
}

func TestSelectorsEmptyCandidates(t *testing.T) {
	for _, kind := range []policy.SelectionKind{
		policy.SelectFirst, policy.SelectRoundRobin,
		policy.SelectRandom, policy.SelectBestResponseTime,
	} {
		sel := newSelector(kind, nil, 1, 1)
		if got := sel.order(nil); len(got) != 0 {
			t.Fatalf("%s on empty = %v", kind, got)
		}
	}
}

// --- listener pool ---

func TestListenerWorkerPool(t *testing.T) {
	inner := transport.InvokerFunc(func(_ context.Context, _ string, req *soap.Envelope) (*soap.Envelope, error) {
		return soap.NewRequest(xmltree.New("", "ok")), nil
	})
	l := NewListener(inner, 4)
	defer l.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := l.Invoke(context.Background(), "x", soap.NewRequest(xmltree.New("", "m")))
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestListenerSpawnMode(t *testing.T) {
	inner := transport.InvokerFunc(func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		return soap.NewRequest(xmltree.New("", "ok")), nil
	})
	l := NewListener(inner, 0)
	defer l.Close()
	if _, err := l.Invoke(context.Background(), "x", soap.NewRequest(xmltree.New("", "m"))); err != nil {
		t.Fatal(err)
	}
}

func TestListenerContextCancel(t *testing.T) {
	blocked := transport.InvokerFunc(func(ctx context.Context, _ string, _ *soap.Envelope) (*soap.Envelope, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	l := NewListener(blocked, 1)
	defer l.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Invoke(ctx, "x", soap.NewRequest(xmltree.New("", "m"))); err == nil {
		t.Fatal("cancelled invoke succeeded")
	}
}

func TestListenerCloseIdempotent(t *testing.T) {
	inner := transport.InvokerFunc(func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		return nil, nil
	})
	l := NewListener(inner, 2)
	l.Close()
	l.Close()
}
