package bus

import (
	"context"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/xmltree"
)

func TestUsageMetering(t *testing.T) {
	svc := &scriptedService{}
	_, v, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	logger := NewMessageLogger(time.Now, 0)
	v.Pipeline().Append(logger)

	// Two instances, different request counts.
	for i := 0; i < 3; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := xmltree.ParseString(`<getCatalog xmlns="urn:scm"><category>tv</category></getCatalog>`)
	other := soap.NewRequest(p)
	soap.SetProcessInstanceID(other, "proc-2")
	if _, err := v.Invoke(context.Background(), "", other); err != nil {
		t.Fatal(err)
	}

	byInstance := UsageBy(logger, "instance")
	if len(byInstance) != 2 {
		t.Fatalf("instances = %+v", byInstance)
	}
	if byInstance[0].Key != "proc-1" || byInstance[0].Messages != 6 { // 3×(req+resp)
		t.Fatalf("top consumer = %+v", byInstance[0])
	}
	if byInstance[1].Key != "proc-2" || byInstance[1].Messages != 2 {
		t.Fatalf("second = %+v", byInstance[1])
	}
	if byInstance[0].Bytes <= byInstance[1].Bytes {
		t.Fatal("byte ordering wrong")
	}

	byOp := UsageBy(logger, "operation")
	if len(byOp) != 1 || byOp[0].Key != "getCatalog" || byOp[0].Messages != 8 {
		t.Fatalf("by operation = %+v", byOp)
	}
	byVEP := UsageBy(logger, "vep")
	if len(byVEP) != 1 || byVEP[0].Key != "Retailer" {
		t.Fatalf("by vep = %+v", byVEP)
	}
}

func TestUsageCountsFaults(t *testing.T) {
	svc := &scriptedService{failFor: 1000, errMode: "fault"}
	_, v, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	logger := NewMessageLogger(time.Now, 0)
	v.Pipeline().Append(logger)

	// With no recovery policy, the unhandled fault envelope passes back
	// through the response pipeline and is metered as a fault message.
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IsFault() {
		t.Fatal("expected fault response")
	}
	records := UsageBy(logger, "instance")
	if len(records) != 1 || records[0].Messages != 2 {
		t.Fatalf("records = %+v", records)
	}
	if records[0].Faults != 1 {
		t.Fatalf("faults = %d", records[0].Faults)
	}
}

func TestOptimizationPolicySwitchesSelection(t *testing.T) {
	slow := &scriptedService{delay: 40 * time.Millisecond}
	fast := &scriptedService{}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="opt">
  <MonitoringPolicy name="sla" subject="vep:Retailer">
    <QoSThreshold metric="responseTime" maxResponse="10ms" minSamples="1"/>
  </MonitoringPolicy>
  <AdaptationPolicy name="optimize-routing" subject="vep:Retailer" priority="5" kind="optimization">
    <OnEvent type="sla.violation"/>
    <Actions><Substitute selection="bestResponseTime"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, rec := testBus(t, xml, map[string]*scriptedService{
		"inproc://a": slow, "inproc://b": fast,
	}, VEPConfig{Selection: policy.SelectRoundRobin})

	// Warm both targets so the best-QoS selector has data, breaching
	// the SLA on the slow one.
	for i := 0; i < 2; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	if vs := v.CheckQoSAndPrevent(time.Minute); len(vs) == 0 {
		t.Fatal("SLA violation not detected")
	}

	// The optimizing policy switched the VEP from round-robin to
	// best-response-time: all subsequent traffic goes to the fast target.
	slowBefore := slow.count()
	for i := 0; i < 4; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	if slow.count() != slowBefore {
		t.Fatalf("slow target still selected after optimization (%d calls)", slow.count()-slowBefore)
	}
	adapts := rec.OfType("adaptation.completed")
	found := false
	for _, ev := range adapts {
		if ev.PolicyName == "optimize-routing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("optimization adaptation not reported: %+v", adapts)
	}
}
