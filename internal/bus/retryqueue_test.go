package bus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/clock"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/xmltree"
)

// flakyInvoker fails the first failFor attempts.
type flakyInvoker struct {
	mu      sync.Mutex
	calls   int
	failFor int
}

func (f *flakyInvoker) Invoke(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failFor {
		return nil, errors.New("delivery failed")
	}
	return soap.NewRequest(xmltree.New("", "ok")), nil
}

func (f *flakyInvoker) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func logEnv() *soap.Envelope {
	return soap.NewRequest(xmltree.NewText("urn:scm", "logEvent", "order received"))
}

func TestRetryQueueDeliversImmediately(t *testing.T) {
	inv := &flakyInvoker{}
	q := NewRetryQueue(RetryQueueConfig{
		Invoker:      inv,
		Policy:       policy.RetryAction{MaxAttempts: 3, Delay: time.Millisecond},
		PollInterval: time.Millisecond,
	})
	defer q.Stop()

	done := q.Enqueue("inproc://log", logEnv())
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delivery never completed")
	}
	if inv.count() != 1 {
		t.Fatalf("calls = %d", inv.count())
	}
}

func TestRetryQueueRedelivers(t *testing.T) {
	inv := &flakyInvoker{failFor: 2}
	q := NewRetryQueue(RetryQueueConfig{
		Invoker:      inv,
		Policy:       policy.RetryAction{MaxAttempts: 3, Delay: time.Millisecond},
		PollInterval: time.Millisecond,
	})
	defer q.Stop()

	done := q.Enqueue("inproc://log", logEnv())
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("redelivery never completed")
	}
	if inv.count() != 3 {
		t.Fatalf("calls = %d, want 3", inv.count())
	}
	if q.DLQ().Len() != 0 {
		t.Fatal("successful message dead-lettered")
	}
}

func TestRetryQueueDeadLetters(t *testing.T) {
	inv := &flakyInvoker{failFor: 1000}
	q := NewRetryQueue(RetryQueueConfig{
		Invoker:      inv,
		Policy:       policy.RetryAction{MaxAttempts: 2, Delay: time.Millisecond},
		PollInterval: time.Millisecond,
	})
	defer q.Stop()

	done := q.Enqueue("inproc://log", logEnv())
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("dead-lettered delivery reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dead-lettering never completed")
	}
	letters := q.DLQ().Letters()
	if len(letters) != 1 {
		t.Fatalf("dead letters = %d", len(letters))
	}
	dl := letters[0]
	if dl.Endpoint != "inproc://log" || dl.Attempts != 3 || dl.LastErr == "" {
		t.Fatalf("dead letter = %+v", dl)
	}
	if inv.count() != 3 { // initial + 2 retries
		t.Fatalf("calls = %d", inv.count())
	}
	if q.Pending() != 0 {
		t.Fatal("dead-lettered message still pending")
	}
}

func TestRetryQueueFaultResponseCountsAsFailure(t *testing.T) {
	faulty := transport.InvokerFunc(func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		return soap.NewFaultEnvelope(soap.FaultServer, "refused"), nil
	})
	q := NewRetryQueue(RetryQueueConfig{
		Invoker:      faulty,
		Policy:       policy.RetryAction{MaxAttempts: 1, Delay: time.Millisecond},
		PollInterval: time.Millisecond,
	})
	defer q.Stop()
	done := q.Enqueue("x", logEnv())
	select {
	case err := <-done:
		var f *soap.Fault
		if !errors.As(err, &f) {
			t.Fatalf("err = %v, want fault", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never finished")
	}
}

func TestRetryQueueBackoffScheduleOnFakeClock(t *testing.T) {
	fc := clock.NewFakeAtZero()
	inv := &flakyInvoker{failFor: 1000}
	q := NewRetryQueue(RetryQueueConfig{
		Clock:        fc,
		Invoker:      inv,
		Policy:       policy.RetryAction{MaxAttempts: 2, Delay: 10 * time.Second, Backoff: policy.BackoffExponential},
		PollInterval: time.Second,
	})
	defer q.Stop()

	q.Enqueue("x", logEnv())
	waitCalls := func(n int) {
		deadline := time.Now().Add(2 * time.Second)
		for inv.count() < n {
			if time.Now().After(deadline) {
				t.Fatalf("calls = %d, want %d", inv.count(), n)
			}
			fc.BlockUntilWaiters(1, time.Second)
			fc.Advance(time.Second)
		}
	}
	// First attempt after one poll tick.
	waitCalls(1)
	// First retry due 10s later.
	for i := 0; i < 10; i++ {
		fc.BlockUntilWaiters(1, time.Second)
		fc.Advance(time.Second)
	}
	waitCalls(2)
	// Second retry due 20s later (exponential).
	for i := 0; i < 20; i++ {
		fc.BlockUntilWaiters(1, time.Second)
		fc.Advance(time.Second)
	}
	waitCalls(3)
}

func TestRetryQueueStopIdempotent(t *testing.T) {
	q := NewRetryQueue(RetryQueueConfig{
		Invoker:      &flakyInvoker{},
		Policy:       policy.RetryAction{MaxAttempts: 1, Delay: time.Millisecond},
		PollInterval: time.Millisecond,
	})
	q.Stop()
	q.Stop() // second stop must not panic or hang
}

func TestBusRetryQueueIntegration(t *testing.T) {
	svc := &scriptedService{failFor: 1}
	net := transport.NewNetwork()
	net.Register("inproc://logging", svc.handler())
	b := New(net)
	q := b.NewRetryQueueFor(policy.RetryAction{MaxAttempts: 3, Delay: time.Millisecond}, time.Millisecond)
	defer q.Stop()

	done := q.Enqueue("inproc://logging", logEnv())
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never delivered")
	}
	if svc.count() != 2 {
		t.Fatalf("calls = %d", svc.count())
	}
}

func TestDeadLetterQueueBounded(t *testing.T) {
	q := NewDeadLetterQueue(3)
	for i := 0; i < 5; i++ {
		q.Add(DeadLetter{Endpoint: fmt.Sprintf("inproc://%d", i)})
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", q.Len())
	}
	if q.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", q.Dropped())
	}
	letters := q.Letters()
	// Drop-oldest: the three most recent survive.
	for i, want := range []string{"inproc://2", "inproc://3", "inproc://4"} {
		if letters[i].Endpoint != want {
			t.Fatalf("letters[%d] = %q, want %q", i, letters[i].Endpoint, want)
		}
	}

	// The zero value is capped at the default, not unbounded.
	var z DeadLetterQueue
	for i := 0; i < DefaultDLQCapacity+10; i++ {
		z.Add(DeadLetter{})
	}
	if z.Len() != DefaultDLQCapacity {
		t.Fatalf("zero-value len = %d, want %d", z.Len(), DefaultDLQCapacity)
	}

	// Negative capacity keeps the old unbounded behaviour.
	u := NewDeadLetterQueue(-1)
	for i := 0; i < DefaultDLQCapacity+10; i++ {
		u.Add(DeadLetter{})
	}
	if u.Len() != DefaultDLQCapacity+10 || u.Dropped() != 0 {
		t.Fatalf("unbounded len = %d dropped = %d", u.Len(), u.Dropped())
	}
}
