package bus

import (
	"context"
	"sync"

	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
)

// Listener fronts the bus (or any invoker) with a request-dispatch
// model. The paper attributes part of the Java wsBus's latency to its
// listener: "when a message arrives at the Listener component, a
// thread is created to serve the request, and this does not scale well
// with high number of requests. This will be avoided in our new .NET
// reimplementation" (§3.2). Listener implements both models so the
// ablation bench can compare them:
//
//   - Workers > 0: a fixed worker pool serves requests from a queue
//     (the planned .NET design, and this implementation's default);
//   - Workers == 0: a fresh goroutine is spawned per request with a
//     handoff through the same queue (the Java thread-per-request
//     model).
//
// Close shuts the pool down and waits for workers to exit.
type Listener struct {
	inner transport.Invoker
	tasks chan task
	wg    sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	spawned bool // per-request goroutine mode
}

type task struct {
	ctx  context.Context
	addr string
	req  *soap.Envelope
	out  chan<- taskResult
}

type taskResult struct {
	resp *soap.Envelope
	err  error
}

// NewListener builds a listener over inner with the given worker count
// (0 selects goroutine-per-request mode).
func NewListener(inner transport.Invoker, workers int) *Listener {
	l := &Listener{
		inner: inner,
		tasks: make(chan task),
	}
	if workers <= 0 {
		l.spawned = true
		l.wg.Add(1)
		go l.spawner()
		return l
	}
	l.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go l.worker()
	}
	return l
}

func (l *Listener) worker() {
	defer l.wg.Done()
	for t := range l.tasks {
		resp, err := l.inner.Invoke(t.ctx, t.addr, t.req)
		t.out <- taskResult{resp: resp, err: err}
	}
}

// spawner models thread-per-request: each arriving task gets a freshly
// created goroutine (plus the handoff cost through the queue).
func (l *Listener) spawner() {
	defer l.wg.Done()
	var inflight sync.WaitGroup
	for t := range l.tasks {
		inflight.Add(1)
		go func(t task) {
			defer inflight.Done()
			resp, err := l.inner.Invoke(t.ctx, t.addr, t.req)
			t.out <- taskResult{resp: resp, err: err}
		}(t)
	}
	inflight.Wait()
}

var _ transport.Invoker = (*Listener)(nil)

// Invoke implements transport.Invoker by dispatching through the
// listener's serving model.
func (l *Listener) Invoke(ctx context.Context, addr string, req *soap.Envelope) (*soap.Envelope, error) {
	out := make(chan taskResult, 1)
	select {
	case l.tasks <- task{ctx: ctx, addr: addr, req: req, out: out}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-out:
		return r.resp, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops accepting requests and waits for workers to finish
// their current tasks.
func (l *Listener) Close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.tasks)
	}
	l.mu.Unlock()
	l.wg.Wait()
}
