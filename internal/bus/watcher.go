package bus

import (
	"sync"
	"time"
)

// QoSWatcher periodically evaluates SLA thresholds for a VEP's targets
// and enacts preventive demotion policies — the continuous side of the
// Monitoring Service ("continuously monitors interactions with the
// participating services to verify that the configured monitoring
// policies are being satisfied", §3.1(2), with the "periodic probing
// for management information" of §3.1(1)). Stop shuts the watcher down
// and waits for its goroutine.
type QoSWatcher struct {
	vep      *VEP
	interval time.Duration
	demotion time.Duration

	stop chan struct{}
	done chan struct{}

	mu     sync.Mutex
	sweeps int
}

// NewQoSWatcher starts a watcher over the VEP, checking every interval
// and demoting violating targets for the demotion period.
func NewQoSWatcher(v *VEP, interval, demotion time.Duration) *QoSWatcher {
	if interval <= 0 {
		interval = time.Second
	}
	w := &QoSWatcher{
		vep:      v,
		interval: interval,
		demotion: demotion,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *QoSWatcher) loop() {
	defer close(w.done)
	clk := w.vep.bus.clk
	for {
		select {
		case <-w.stop:
			return
		case <-clk.After(w.interval):
		}
		w.vep.CheckQoSAndPrevent(w.demotion)
		w.mu.Lock()
		w.sweeps++
		w.mu.Unlock()
	}
}

// Sweeps reports how many checks have run.
func (w *QoSWatcher) Sweeps() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sweeps
}

// Stop terminates the watcher and waits for it to exit. Safe to call
// more than once.
func (w *QoSWatcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}
