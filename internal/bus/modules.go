package bus

import (
	"fmt"
	"regexp"
	"sync"
	"time"

	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/wsdl"
	"github.com/masc-project/masc/internal/xmltree"
	"github.com/masc-project/masc/internal/xpath"
)

// MessageContext travels through the processing pipeline with a
// message as it crosses the bus.
type MessageContext struct {
	// VEP is the virtual endpoint handling the message.
	VEP string
	// Operation is the service operation.
	Operation string
	// Target is the concrete service address chosen (set for response
	// processing and late request stages).
	Target string
	// Request is the request envelope (mutable in request stages).
	Request *soap.Envelope
	// Response is the response envelope (mutable in response stages;
	// nil during request processing).
	Response *soap.Envelope
	// Meta carries free-form annotations between modules.
	Meta map[string]string
}

// Module is a Message Processing Module (§3.1(5)): "these handlers can
// be configured as a pipeline to manipulate and pre/post-process both
// request and response messages". ProcessRequest runs before the
// service invocation (in pipeline order), ProcessResponse after it (in
// reverse order). An error aborts the invocation.
type Module interface {
	// ModuleName identifies the module in diagnostics.
	ModuleName() string
	// ProcessRequest pre-processes the outgoing request.
	ProcessRequest(mc *MessageContext) error
	// ProcessResponse post-processes the incoming response.
	ProcessResponse(mc *MessageContext) error
}

// Pipeline is an ordered module chain.
type Pipeline struct {
	mu      sync.RWMutex
	modules []Module
}

// Append adds a module to the end of the pipeline.
func (p *Pipeline) Append(m Module) {
	p.mu.Lock()
	p.modules = append(p.modules, m)
	p.mu.Unlock()
}

// Modules returns a snapshot of the chain.
func (p *Pipeline) Modules() []Module {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Module, len(p.modules))
	copy(out, p.modules)
	return out
}

// RunRequest applies every module's request stage in order.
func (p *Pipeline) RunRequest(mc *MessageContext) error {
	for _, m := range p.Modules() {
		if err := m.ProcessRequest(mc); err != nil {
			return fmt.Errorf("bus: module %s (request): %w", m.ModuleName(), err)
		}
	}
	return nil
}

// RunResponse applies every module's response stage in reverse order.
func (p *Pipeline) RunResponse(mc *MessageContext) error {
	mods := p.Modules()
	for i := len(mods) - 1; i >= 0; i-- {
		if err := mods[i].ProcessResponse(mc); err != nil {
			return fmt.Errorf("bus: module %s (response): %w", mods[i].ModuleName(), err)
		}
	}
	return nil
}

// --- Message Logger ---

// LogEntry is one logged message observation.
type LogEntry struct {
	Time       time.Time
	VEP        string
	Operation  string
	Target     string
	Direction  wsdl.Direction
	InstanceID string
	Fault      bool
	Size       int
}

// MessageLogger is the Message Logger handler: "to log the messages as
// they pass through the messaging layer ... useful for debugging
// problems, meter usage for subsequent billing to users, or trace
// business-level events" (§3.1(5)). It retains a bounded in-memory
// log; MessageLogger is safe for concurrent use.
type MessageLogger struct {
	now   func() time.Time
	limit int

	mu      sync.Mutex
	entries []LogEntry
}

var _ Module = (*MessageLogger)(nil)

// NewMessageLogger builds a logger retaining at most limit entries
// (limit <= 0 means 4096). now supplies timestamps.
func NewMessageLogger(now func() time.Time, limit int) *MessageLogger {
	if limit <= 0 {
		limit = 4096
	}
	return &MessageLogger{now: now, limit: limit}
}

// ModuleName implements Module.
func (l *MessageLogger) ModuleName() string { return "MessageLogger" }

// ProcessRequest implements Module.
func (l *MessageLogger) ProcessRequest(mc *MessageContext) error {
	l.log(mc, wsdl.Request, mc.Request)
	return nil
}

// ProcessResponse implements Module.
func (l *MessageLogger) ProcessResponse(mc *MessageContext) error {
	l.log(mc, wsdl.Response, mc.Response)
	return nil
}

func (l *MessageLogger) log(mc *MessageContext, dir wsdl.Direction, env *soap.Envelope) {
	if env == nil {
		return
	}
	size := 0
	if text, err := env.Encode(); err == nil {
		size = len(text)
	}
	e := LogEntry{
		Time:       l.now(),
		VEP:        mc.VEP,
		Operation:  mc.Operation,
		Target:     mc.Target,
		Direction:  dir,
		InstanceID: soap.ProcessInstanceID(env),
		Fault:      env.IsFault(),
		Size:       size,
	}
	l.mu.Lock()
	l.entries = append(l.entries, e)
	if len(l.entries) > l.limit {
		l.entries = append(l.entries[:0], l.entries[len(l.entries)-l.limit:]...)
	}
	l.mu.Unlock()
}

// Entries returns a copy of the retained log.
func (l *MessageLogger) Entries() []LogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// --- Contract validator ---

// ValidatorModule validates messages against a WSDL contract in both
// directions.
type ValidatorModule struct {
	// Contract is the abstract contract to enforce.
	Contract *wsdl.Contract
}

var _ Module = (*ValidatorModule)(nil)

// ModuleName implements Module.
func (*ValidatorModule) ModuleName() string { return "Validator" }

// ProcessRequest implements Module.
func (v *ValidatorModule) ProcessRequest(mc *MessageContext) error {
	return v.Contract.Validate(mc.Request, wsdl.Request)
}

// ProcessResponse implements Module.
func (v *ValidatorModule) ProcessResponse(mc *MessageContext) error {
	if mc.Response == nil {
		return nil
	}
	return v.Contract.Validate(mc.Response, wsdl.Response)
}

// --- Message Adaptation (transformation / enrichment) ---

// Transform mutates a payload element in place; used by the Message
// Adaptation Service for "structural, value and encoding mismatches"
// between services registered with a VEP (§3.1(6)).
type Transform func(payload *xmltree.Element) error

// RenameElements returns a Transform that renames descendant elements
// (schema mapping), keyed by local name.
func RenameElements(renames map[string]string) Transform {
	return func(payload *xmltree.Element) error {
		payload.Walk(func(e *xmltree.Element) bool {
			if to, ok := renames[e.Name.Local]; ok {
				e.Name.Local = to
			}
			return true
		})
		return nil
	}
}

// AddElement returns a Transform appending a copy of el to the payload
// root — the "attach additional data from external sources" pattern
// with static data.
func AddElement(el *xmltree.Element) Transform {
	return func(payload *xmltree.Element) error {
		payload.Append(el.Copy())
		return nil
	}
}

// EnrichFrom returns a Transform that appends data fetched per message
// from an external source (e.g. a Web service call or database query).
func EnrichFrom(source func(payload *xmltree.Element) (*xmltree.Element, error)) Transform {
	return func(payload *xmltree.Element) error {
		extra, err := source(payload)
		if err != nil {
			return fmt.Errorf("enrich: %w", err)
		}
		if extra != nil {
			payload.Append(extra)
		}
		return nil
	}
}

// RemoveElements returns a Transform deleting direct children by local
// name.
func RemoveElements(locals ...string) Transform {
	drop := make(map[string]bool, len(locals))
	for _, l := range locals {
		drop[l] = true
	}
	return func(payload *xmltree.Element) error {
		kept := payload.Children[:0]
		for _, c := range payload.Children {
			if !drop[c.Name.Local] {
				kept = append(kept, c)
			}
		}
		payload.Children = kept
		return nil
	}
}

// AdaptationModule applies transforms to requests and/or responses.
type AdaptationModule struct {
	// Name labels the module.
	Name string
	// RequestTransforms run on request payloads in order.
	RequestTransforms []Transform
	// ResponseTransforms run on response payloads in order.
	ResponseTransforms []Transform
}

var _ Module = (*AdaptationModule)(nil)

// ModuleName implements Module.
func (a *AdaptationModule) ModuleName() string {
	if a.Name != "" {
		return a.Name
	}
	return "MessageAdaptation"
}

// ProcessRequest implements Module.
func (a *AdaptationModule) ProcessRequest(mc *MessageContext) error {
	if mc.Request == nil || mc.Request.Payload == nil {
		return nil
	}
	for _, t := range a.RequestTransforms {
		if err := t(mc.Request.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ProcessResponse implements Module.
func (a *AdaptationModule) ProcessResponse(mc *MessageContext) error {
	if mc.Response == nil || mc.Response.Payload == nil {
		return nil
	}
	for _, t := range a.ResponseTransforms {
		if err := t(mc.Response.Payload); err != nil {
			return err
		}
	}
	return nil
}

// --- Conditional wrapper ---

// Rule decides whether a module applies to a message: "simple rules
// expressed as a regular expression or XPath query against the header
// or the payload of the message" (§3.1).
type Rule interface {
	// Applies reports whether the rule matches the message.
	Applies(env *soap.Envelope) (bool, error)
}

// XPathRule matches when a compiled XPath evaluates true over the
// message envelope.
type XPathRule struct {
	Expr *xpath.Compiled
}

var _ Rule = (*XPathRule)(nil)

// Applies implements Rule.
func (r *XPathRule) Applies(env *soap.Envelope) (bool, error) {
	if env == nil {
		return false, nil
	}
	return r.Expr.EvalBool(env.ToXML(), xpath.Context{})
}

// RegexRule matches when a regular expression matches the serialized
// message.
type RegexRule struct {
	Pattern *regexp.Regexp
}

var _ Rule = (*RegexRule)(nil)

// Applies implements Rule.
func (r *RegexRule) Applies(env *soap.Envelope) (bool, error) {
	if env == nil {
		return false, nil
	}
	text, err := env.Encode()
	if err != nil {
		return false, err
	}
	return r.Pattern.MatchString(text), nil
}

// ConditionalModule gates an inner module behind a rule evaluated on
// the request message.
type ConditionalModule struct {
	// Rule guards the inner module.
	Rule Rule
	// Inner is the wrapped module.
	Inner Module
}

var _ Module = (*ConditionalModule)(nil)

// ModuleName implements Module.
func (c *ConditionalModule) ModuleName() string {
	return "If(" + c.Inner.ModuleName() + ")"
}

// ProcessRequest implements Module.
func (c *ConditionalModule) ProcessRequest(mc *MessageContext) error {
	ok, err := c.Rule.Applies(mc.Request)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if mc.Meta == nil {
		mc.Meta = make(map[string]string)
	}
	mc.Meta["conditional:"+c.Inner.ModuleName()] = "applied"
	return c.Inner.ProcessRequest(mc)
}

// ProcessResponse implements Module: the inner module's response stage
// runs only when its request stage applied (same message flow).
func (c *ConditionalModule) ProcessResponse(mc *MessageContext) error {
	if mc.Meta["conditional:"+c.Inner.ModuleName()] != "applied" {
		return nil
	}
	return c.Inner.ProcessResponse(mc)
}

// --- Aggregator ---

// Aggregator buffers payload elements and flushes them as a single
// merged message once the batch size is reached — the "buffer multiple
// messages and aggregate them into a single one before sending them to
// the destination service" transformation pattern (§3.1(6)).
// Aggregator is safe for concurrent use.
type Aggregator struct {
	batch   int
	wrapper xmltree.Name

	mu     sync.Mutex
	buffer []*xmltree.Element
}

// NewAggregator builds an aggregator flushing every batch payloads into
// a wrapper element with the given namespace and local name.
func NewAggregator(batch int, space, local string) *Aggregator {
	if batch < 1 {
		batch = 1
	}
	return &Aggregator{batch: batch, wrapper: xmltree.Name{Space: space, Local: local}}
}

// Add buffers a payload copy; when the batch is full it returns the
// merged payload and true.
func (a *Aggregator) Add(payload *xmltree.Element) (*xmltree.Element, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.buffer = append(a.buffer, payload.Copy())
	if len(a.buffer) < a.batch {
		return nil, false
	}
	return a.flushLocked(), true
}

// Flush returns the merged payload of whatever is buffered (nil when
// empty).
func (a *Aggregator) Flush() *xmltree.Element {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.buffer) == 0 {
		return nil
	}
	return a.flushLocked()
}

func (a *Aggregator) flushLocked() *xmltree.Element {
	merged := xmltree.New(a.wrapper.Space, a.wrapper.Local)
	for _, p := range a.buffer {
		merged.Append(p)
	}
	a.buffer = nil
	return merged
}

// Pending reports how many payloads are buffered.
func (a *Aggregator) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buffer)
}

// Split divides a batch payload back into its child payloads — the
// inverse of aggregation ("split/merge messages").
func Split(batch *xmltree.Element) []*xmltree.Element {
	out := make([]*xmltree.Element, 0, len(batch.Children))
	for _, c := range batch.Children {
		out = append(out, c.Copy())
	}
	return out
}
