package bus

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/transport"
)

// telemetryBus assembles a bus with telemetry wired in, one VEP named
// Retailer, and the given services.
func telemetryBus(t *testing.T, policyXML string, services map[string]*scriptedService, cfg VEPConfig) (*Bus, *VEP, *telemetry.Telemetry) {
	t.Helper()
	net := transport.NewNetwork()
	for addr, svc := range services {
		net.Register(addr, svc.handler())
	}
	if cfg.Services == nil {
		for _, a := range []string{"inproc://a", "inproc://b", "inproc://c"} {
			if _, ok := services[a]; ok {
				cfg.Services = append(cfg.Services, a)
			}
		}
	}
	repo := policy.NewRepository()
	if policyXML != "" {
		if _, err := repo.LoadXML(policyXML); err != nil {
			t.Fatal(err)
		}
	}
	tel := telemetry.New(0)
	b := New(net,
		WithPolicyRepository(repo),
		WithEventBus(event.NewBus()),
		WithSeed(7),
		WithTelemetry(tel))
	if cfg.Name == "" {
		cfg.Name = "Retailer"
	}
	if cfg.Contract == nil {
		cfg.Contract = scmContract()
	}
	v, err := b.CreateVEP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b, v, tel
}

func TestTelemetryMetricsRecorded(t *testing.T) {
	bad := &scriptedService{failFor: 1000}
	good := &scriptedService{}
	b, _, tel := telemetryBus(t, retryThenFailoverXML, map[string]*scriptedService{
		"inproc://a": bad,
		"inproc://b": good,
	}, VEPConfig{Selection: policy.SelectFirst})

	resp, err := b.Invoke(context.Background(), "vep:Retailer", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("resp=%v err=%v", resp, err)
	}

	reg := tel.Metrics
	checks := []struct {
		name string
		vec  *telemetry.CounterVec
		vals []string
		want uint64
	}{
		{"routes", reg.Counter("masc_bus_invocations_total", "", "route"), []string{"vep"}, 1},
		{"invocations", reg.Counter("masc_vep_invocations_total", "", "vep", "operation", "outcome"),
			[]string{"Retailer", "getCatalog", "ok"}, 1},
		{"faults", reg.Counter("masc_vep_faults_total", "", "vep", "fault_type"),
			[]string{"Retailer", "ServiceUnavailableFault"}, 1},
		{"retries", reg.Counter("masc_vep_retries_total", "", "vep"), []string{"Retailer"}, 2},
		{"failovers", reg.Counter("masc_vep_failovers_total", "", "vep"), []string{"Retailer"}, 1},
		{"adaptations", reg.Counter("masc_vep_adaptations_total", "", "vep", "policy"),
			[]string{"Retailer", "retry-then-failover"}, 1},
	}
	for _, c := range checks {
		if got := c.vec.With(c.vals...).Value(); got != c.want {
			t.Errorf("%s%v = %v, want %v", c.name, c.vals, got, c.want)
		}
	}
	attempts := reg.Counter("masc_vep_attempts_total", "", "vep", "target", "outcome")
	if got := attempts.With("Retailer", "inproc://a", "error").Value(); got != 3 {
		t.Errorf("attempts on bad target = %v, want 3", got)
	}
	if got := attempts.With("Retailer", "inproc://b", "ok").Value(); got != 1 {
		t.Errorf("attempts on good target = %v, want 1", got)
	}
	lat := reg.Histogram("masc_vep_invocation_seconds", "", nil, "vep").With("Retailer")
	if lat.Count() != 1 {
		t.Errorf("latency observations = %d, want 1", lat.Count())
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`masc_vep_invocations_total{vep="Retailer",operation="getCatalog",outcome="ok"} 1`,
		`masc_vep_retries_total{vep="Retailer"} 2`,
		`masc_vep_failovers_total{vep="Retailer"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// collectNotes flattens all annotations of a span tree.
func collectNotes(v telemetry.SpanView) []string {
	var out []string
	for _, n := range v.Notes {
		out = append(out, n.Text)
	}
	for _, c := range v.Children {
		out = append(out, collectNotes(c)...)
	}
	return out
}

func TestTelemetryTraceAnnotations(t *testing.T) {
	bad := &scriptedService{failFor: 1000}
	good := &scriptedService{}
	b, _, tel := telemetryBus(t, retryThenFailoverXML, map[string]*scriptedService{
		"inproc://a": bad,
		"inproc://b": good,
	}, VEPConfig{Selection: policy.SelectFirst})

	ctx, root := tel.Tracer.StartTrace(context.Background(), "gateway request")
	resp, err := b.Invoke(ctx, "vep:Retailer", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	root.End()

	traces := tel.Tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	view, ok := tel.Tracer.Trace(traces[0].ID)
	if !ok {
		t.Fatal("trace not found by ID")
	}
	if len(view.Root.Children) != 1 || view.Root.Children[0].Name != "vep Retailer" {
		t.Fatalf("root children = %+v", view.Root.Children)
	}
	vep := view.Root.Children[0]
	// initial + 2 retries on a, failover attempt on b = 4 attempt spans.
	if len(vep.Children) != 4 {
		t.Fatalf("attempt spans = %d, want 4", len(vep.Children))
	}
	for _, c := range vep.Children {
		if !strings.HasPrefix(c.Name, "attempt ") {
			t.Fatalf("unexpected child span %q", c.Name)
		}
	}
	notes := strings.Join(collectNotes(view.Root), "\n")
	for _, want := range []string{
		"fault ServiceUnavailableFault classified",
		"retry 1/2 on inproc://a",
		"retry 2/2 on inproc://a",
		"failover inproc://a -> inproc://b",
		"adaptation policy retry-then-failover handled",
	} {
		if !strings.Contains(notes, want) {
			t.Errorf("trace notes missing %q\nnotes:\n%s", want, notes)
		}
	}
}

func TestTelemetryRetryQueueMetrics(t *testing.T) {
	svc := &scriptedService{failFor: 1}
	b, _, tel := telemetryBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	q := b.NewRetryQueueFor(policy.RetryAction{MaxAttempts: 3, Delay: time.Millisecond}, time.Millisecond)
	defer q.Stop()

	done := q.Enqueue("vep:Retailer", catalogReq(t))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("delivery failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery timed out")
	}

	reg := tel.Metrics
	dels := reg.Counter("masc_retryqueue_deliveries_total", "", "outcome")
	if got := dels.With("delivered").Value(); got != 1 {
		t.Errorf("delivered = %v, want 1", got)
	}
	if got := dels.With("requeued").Value(); got != 1 {
		t.Errorf("requeued = %v, want 1", got)
	}
	if got := reg.Gauge("masc_retryqueue_pending", "").With().Value(); got != 0 {
		t.Errorf("pending gauge = %v, want 0", got)
	}
}
