package bus

import (
	"context"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/policy"
)

func TestQoSWatcherDemotesContinuously(t *testing.T) {
	slow := &scriptedService{delay: 40 * time.Millisecond}
	fast := &scriptedService{}
	xml := `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="p">
  <MonitoringPolicy name="sla" subject="vep:Retailer">
    <QoSThreshold metric="responseTime" maxResponse="10ms" minSamples="1"/>
  </MonitoringPolicy>
  <AdaptationPolicy name="prevent" subject="vep:Retailer" priority="5" kind="prevention">
    <OnEvent type="sla.violation"/>
    <Actions><Substitute selection="first"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`
	_, v, _ := testBus(t, xml, map[string]*scriptedService{
		"inproc://a": slow, "inproc://b": fast,
	}, VEPConfig{Selection: policy.SelectFirst})

	// Record the slow target's latency, then start the watcher.
	if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
		t.Fatal(err)
	}
	w := NewQoSWatcher(v, 5*time.Millisecond, time.Minute)
	defer w.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for w.Sweeps() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher swept %d times", w.Sweeps())
		}
		time.Sleep(time.Millisecond)
	}

	// Traffic now avoids the demoted slow target.
	before := slow.count()
	for i := 0; i < 3; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err != nil {
			t.Fatal(err)
		}
	}
	if slow.count() != before {
		t.Fatalf("slow target still selected after watcher demotion")
	}
	if fast.count() < 3 {
		t.Fatalf("fast target calls = %d", fast.count())
	}
}

func TestQoSWatcherStopIdempotent(t *testing.T) {
	svc := &scriptedService{}
	_, v, _ := testBus(t, "", map[string]*scriptedService{"inproc://a": svc}, VEPConfig{})
	w := NewQoSWatcher(v, time.Millisecond, time.Minute)
	w.Stop()
	w.Stop()
}
