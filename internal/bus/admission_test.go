package bus

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/clock"
	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/monitor"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/xmltree"
)

// gateService blocks each call until a token arrives on release,
// signalling entry on entered — the controllable slow backend the
// admission and hedging tests park traffic on.
type gateService struct {
	entered chan struct{}
	release chan struct{}
	calls   atomic.Int32
}

func newGateService() *gateService {
	return &gateService{
		entered: make(chan struct{}, 16),
		release: make(chan struct{}, 16),
	}
}

func (g *gateService) handler() transport.HandlerFunc {
	return func(_ context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		g.calls.Add(1)
		g.entered <- struct{}{}
		<-g.release
		op := req.PayloadName().Local
		return soap.NewRequest(xmltree.New("urn:scm", op+"Response")), nil
	}
}

// protectedBus assembles a bus with an injectable clock and one
// protected VEP.
func protectedBus(t *testing.T, clk clock.Clock, services map[string]transport.HandlerFunc, cfg VEPConfig) (*Bus, *VEP, *event.Recorder) {
	t.Helper()
	net := transport.NewNetwork()
	for addr, h := range services {
		net.Register(addr, h)
	}
	ev := event.NewBus()
	var rec event.Recorder
	rec.Attach(ev)
	opts := []Option{WithEventBus(ev), WithSeed(7)}
	if clk != nil {
		opts = append(opts, WithClock(clk))
	}
	b := New(net, opts...)
	if cfg.Name == "" {
		cfg.Name = "Retailer"
	}
	if cfg.Contract == nil {
		cfg.Contract = scmContract()
	}
	v, err := b.CreateVEP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b, v, &rec
}

func waitQueued(t *testing.T, v *VEP, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, queued, ok := v.AdmissionDepths(); ok && queued >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d", want)
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	gate := newGateService()
	_, v, rec := protectedBus(t, nil,
		map[string]transport.HandlerFunc{"inproc://a": gate.handler()},
		VEPConfig{
			Services: []string{"inproc://a"},
			Protection: &policy.ProtectionPolicy{
				Name:      "guard",
				Admission: &policy.AdmissionSpec{MaxInFlight: 1, MaxQueue: 1},
			},
		})

	req1, req2, req3 := catalogReq(t), catalogReq(t), catalogReq(t)
	done := make(chan error, 2)
	go func() {
		_, err := v.Invoke(context.Background(), "", req1)
		done <- err
	}()
	<-gate.entered
	go func() {
		_, err := v.Invoke(context.Background(), "", req2)
		done <- err
	}()
	waitQueued(t, v, 1)

	// One in flight, one queued: the third must be shed immediately.
	resp, err := v.Invoke(context.Background(), "", req3)
	if err != nil {
		t.Fatalf("shed returned error, want fault envelope: %v", err)
	}
	if resp == nil || !resp.IsFault() {
		t.Fatalf("resp = %v, want ServerBusy fault", resp)
	}
	if !strings.HasPrefix(resp.Fault.String, "ServerBusy") {
		t.Fatalf("fault string = %q", resp.Fault.String)
	}
	if !strings.Contains(resp.Fault.String, "queue_full") {
		t.Fatalf("fault string = %q, want queue_full reason", resp.Fault.String)
	}

	// The shed is classified and raised as a monitored fault.
	var sawBusy bool
	for _, e := range rec.OfType(event.TypeFaultDetected) {
		if e.FaultType == monitor.FaultServerBusy {
			sawBusy = true
		}
	}
	if !sawBusy {
		t.Fatal("no ServerBusyFault event recorded")
	}

	// Releasing the backend drains the admitted and the queued request.
	gate.release <- struct{}{}
	gate.release <- struct{}{}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("queued invocation failed: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("queued invocation never completed")
		}
	}
	if n := gate.calls.Load(); n != 2 {
		t.Fatalf("backend calls = %d, want 2 (shed request must not reach it)", n)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	fc := clock.NewFakeAtZero()
	gate := newGateService()
	_, v, _ := protectedBus(t, fc,
		map[string]transport.HandlerFunc{"inproc://a": gate.handler()},
		VEPConfig{
			Services: []string{"inproc://a"},
			Protection: &policy.ProtectionPolicy{
				Name: "guard",
				Admission: &policy.AdmissionSpec{
					MaxInFlight: 1, MaxQueue: 4, QueueTimeout: 100 * time.Millisecond,
				},
			},
		})

	req1, req2 := catalogReq(t), catalogReq(t)
	first := make(chan error, 1)
	go func() {
		_, err := v.Invoke(context.Background(), "", req1)
		first <- err
	}()
	<-gate.entered

	type result struct {
		resp *soap.Envelope
		err  error
	}
	queued := make(chan result, 1)
	go func() {
		resp, err := v.Invoke(context.Background(), "", req2)
		queued <- result{resp, err}
	}()
	waitQueued(t, v, 1)

	// Advance in small steps until the queue timeout fires (the waiter
	// may register its timer slightly after it becomes visible in the
	// queue depth).
	var r result
	deadline := time.After(2 * time.Second)
poll:
	for {
		select {
		case r = <-queued:
			break poll
		case <-deadline:
			t.Fatal("queued request never timed out")
		default:
			fc.Advance(150 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}
	if r.err != nil {
		t.Fatalf("timed-out request returned error, want fault: %v", r.err)
	}
	if r.resp == nil || !r.resp.IsFault() || !strings.Contains(r.resp.Fault.String, "queue_timeout") {
		t.Fatalf("resp = %+v, want queue_timeout ServerBusy fault", r.resp)
	}

	gate.release <- struct{}{}
	if err := <-first; err != nil {
		t.Fatalf("admitted invocation failed: %v", err)
	}
	if n := gate.calls.Load(); n != 1 {
		t.Fatalf("backend calls = %d, want 1", n)
	}
}

func TestAdmissionHandsSlotToQueuedWaiter(t *testing.T) {
	gate := newGateService()
	_, v, _ := protectedBus(t, nil,
		map[string]transport.HandlerFunc{"inproc://a": gate.handler()},
		VEPConfig{
			Services: []string{"inproc://a"},
			Protection: &policy.ProtectionPolicy{
				Name:      "guard",
				Admission: &policy.AdmissionSpec{MaxInFlight: 1, MaxQueue: 2},
			},
		})

	req1, req2 := catalogReq(t), catalogReq(t)
	done := make(chan error, 2)
	go func() {
		_, err := v.Invoke(context.Background(), "", req1)
		done <- err
	}()
	<-gate.entered
	go func() {
		_, err := v.Invoke(context.Background(), "", req2)
		done <- err
	}()
	waitQueued(t, v, 1)

	// Finishing the first request must hand its slot to the waiter.
	gate.release <- struct{}{}
	select {
	case <-gate.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never reached the backend")
	}
	gate.release <- struct{}{}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("invocation failed: %v", err)
		}
	}
	if n := gate.calls.Load(); n != 2 {
		t.Fatalf("backend calls = %d, want 2", n)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(&policy.AdmissionSpec{MaxInFlight: 1, MaxQueue: 1}, clock.New(), nil, nil)
	if err := a.acquire(context.Background(), "v"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- a.acquire(ctx, "v") }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, queued := a.depths(); queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("cancellation misreported as shed: %v", err)
	}
	// The abandoned waiter must not leak the slot.
	a.release()
	if err := a.acquire(context.Background(), "v"); err != nil {
		t.Fatalf("slot leaked after cancel: %v", err)
	}
}
