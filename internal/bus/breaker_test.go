package bus

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/clock"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/transport"
)

func breakerVEP(t *testing.T, fc clock.Clock, a, b *scriptedService) *VEP {
	t.Helper()
	_, v, _ := protectedBus(t, fc,
		map[string]transport.HandlerFunc{
			"inproc://a": a.handler(),
			"inproc://b": b.handler(),
		},
		VEPConfig{
			Services:  []string{"inproc://a", "inproc://b"},
			Selection: policy.SelectFirst,
			Protection: &policy.ProtectionPolicy{
				Name: "guard",
				Breaker: &policy.BreakerSpec{
					FailureThreshold: 2,
					Cooldown:         10 * time.Second,
				},
			},
		})
	return v
}

func TestBreakerOpensAndSkipsBackend(t *testing.T) {
	fc := clock.NewFakeAtZero()
	a := &scriptedService{failFor: 2} // heals after two failures
	b := &scriptedService{}
	v := breakerVEP(t, fc, a, b)

	// Two consecutive classified faults trip the breaker (no adaptation
	// policy is loaded, so the failures propagate to the caller).
	for i := 0; i < 2; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err == nil {
			t.Fatalf("invocation %d unexpectedly healthy", i+1)
		}
	}
	if got := v.BreakerStates()["inproc://a"]; got != "open" {
		t.Fatalf("breaker state = %q, want open", got)
	}

	// While open, selection skips a entirely: the next request is served
	// by b without paying a's failure first.
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("resp = %v err = %v, want healthy from b", resp, err)
	}
	if a.count() != 2 || b.count() != 1 {
		t.Fatalf("calls a=%d b=%d, want a=2 b=1", a.count(), b.count())
	}

	// After the cooldown the next request probes a (half-open); a is
	// healthy again, so the breaker closes and a serves.
	fc.Advance(11 * time.Second)
	resp, err = v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("probe invocation failed: %v %v", resp, err)
	}
	if a.count() != 3 {
		t.Fatalf("a calls = %d, want 3 (probe)", a.count())
	}
	if got := v.BreakerStates()["inproc://a"]; got != "closed" {
		t.Fatalf("breaker state = %q, want closed after probe", got)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	fc := clock.NewFakeAtZero()
	a := &scriptedService{failFor: 1000} // never heals
	b := &scriptedService{}
	v := breakerVEP(t, fc, a, b)

	for i := 0; i < 2; i++ {
		if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err == nil {
			t.Fatal("expected failure")
		}
	}
	fc.Advance(11 * time.Second)

	// The probe fails, so the breaker re-opens immediately.
	if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err == nil {
		t.Fatal("failed probe unexpectedly healthy")
	}
	if got := v.BreakerStates()["inproc://a"]; got != "open" {
		t.Fatalf("breaker state = %q, want open after failed probe", got)
	}

	// Within the fresh cooldown traffic routes around a again.
	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("resp = %v err = %v, want healthy from b", resp, err)
	}
	if a.count() != 3 || b.count() != 1 {
		t.Fatalf("calls a=%d b=%d, want a=3 b=1", a.count(), b.count())
	}
}

func TestBreakerAllOpenFallsBackToFullSet(t *testing.T) {
	fc := clock.NewFakeAtZero()
	a := &scriptedService{failFor: 1000}
	b := &scriptedService{failFor: 1000}
	v := breakerVEP(t, fc, a, b)

	// Trip both breakers.
	for i := 0; i < 6; i++ {
		_, _ = v.Invoke(context.Background(), "", catalogReq(t))
	}
	states := v.BreakerStates()
	if states["inproc://a"] != "open" || states["inproc://b"] != "open" {
		t.Fatalf("states = %v, want both open", states)
	}

	// With every breaker open the VEP degrades to the unfiltered set
	// instead of reporting no services.
	if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err == nil {
		t.Fatal("expected downstream failure, not success")
	} else if errors.Is(err, transport.ErrEndpointNotFound) {
		t.Fatalf("all-open breakers must not empty the service set: %v", err)
	}
}
