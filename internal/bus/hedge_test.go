package bus

import (
	"context"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/clock"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
)

func hedgeSpecForTest() *policy.HedgeSpec {
	return &policy.HedgeSpec{AfterFactor: 1, MinSamples: 5, MaxHedges: 1}
}

// seedTracker gives target enough healthy samples for a trusted p95.
func seedTracker(b *Bus, target string, rtt time.Duration, n int) {
	for i := 0; i < n; i++ {
		b.Tracker().Record(target, rtt, true)
	}
}

func TestHedgeWinsOverStalledPrimary(t *testing.T) {
	fc := clock.NewFakeAtZero()
	gate := newGateService() // primary: stalls until released
	backup := &scriptedService{}
	b, v, _ := protectedBus(t, fc,
		map[string]transport.HandlerFunc{
			"inproc://a": gate.handler(),
			"inproc://b": backup.handler(),
		},
		VEPConfig{
			Services:   []string{"inproc://a", "inproc://b"},
			Selection:  policy.SelectFirst,
			Protection: &policy.ProtectionPolicy{Name: "guard", Hedge: hedgeSpecForTest()},
		})
	seedTracker(b, "inproc://a", 50*time.Millisecond, 10)
	t.Cleanup(func() { close(gate.release) })

	type result struct {
		resp *soap.Envelope
		err  error
	}
	got := make(chan result, 1)
	req := catalogReq(t)
	go func() {
		resp, err := v.Invoke(context.Background(), "", req)
		got <- result{resp, err}
	}()
	<-gate.entered // primary is stalled downstream

	// Advance past the hedge delay (p95 = 50ms) until the backup's
	// response wins.
	var r result
	deadline := time.After(2 * time.Second)
poll:
	for {
		select {
		case r = <-got:
			break poll
		case <-deadline:
			t.Fatal("hedged invocation never completed")
		default:
			fc.Advance(60 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}
	if r.err != nil || r.resp == nil || r.resp.IsFault() {
		t.Fatalf("resp = %v err = %v, want healthy hedge response", r.resp, r.err)
	}
	if backup.count() != 1 {
		t.Fatalf("backup calls = %d, want 1", backup.count())
	}
	if gate.calls.Load() != 1 {
		t.Fatalf("primary calls = %d, want 1", gate.calls.Load())
	}
}

func TestHedgeNotLaunchedForFastPrimary(t *testing.T) {
	fc := clock.NewFakeAtZero()
	primary := &scriptedService{}
	backup := &scriptedService{}
	b, v, _ := protectedBus(t, fc,
		map[string]transport.HandlerFunc{
			"inproc://a": primary.handler(),
			"inproc://b": backup.handler(),
		},
		VEPConfig{
			Services:   []string{"inproc://a", "inproc://b"},
			Selection:  policy.SelectFirst,
			Protection: &policy.ProtectionPolicy{Name: "guard", Hedge: hedgeSpecForTest()},
		})
	seedTracker(b, "inproc://a", 50*time.Millisecond, 10)

	resp, err := v.Invoke(context.Background(), "", catalogReq(t))
	if err != nil || resp.IsFault() {
		t.Fatalf("resp = %v err = %v", resp, err)
	}
	if primary.count() != 1 || backup.count() != 0 {
		t.Fatalf("calls primary=%d backup=%d, want 1/0", primary.count(), backup.count())
	}
}

func TestHedgeDelayRequiresWarmStatistics(t *testing.T) {
	b, v, _ := protectedBus(t, nil,
		map[string]transport.HandlerFunc{"inproc://a": (&scriptedService{}).handler()},
		VEPConfig{
			Services:   []string{"inproc://a"},
			Protection: &policy.ProtectionPolicy{Name: "guard", Hedge: hedgeSpecForTest()},
		})
	h := v.hedgeSpec()
	if h == nil {
		t.Fatal("hedge spec not applied")
	}
	if _, ok := v.hedgeDelay(h, "inproc://a"); ok {
		t.Fatal("cold target must not be hedged")
	}
	seedTracker(b, "inproc://a", 40*time.Millisecond, 10)
	d, ok := v.hedgeDelay(h, "inproc://a")
	if !ok || d <= 0 {
		t.Fatalf("delay = %v ok = %v, want positive delay", d, ok)
	}
	// MinDelay floors the trigger.
	h2 := &policy.HedgeSpec{AfterFactor: 1, MinSamples: 5, MinDelay: time.Second, MaxHedges: 1}
	if d2, ok := v.hedgeDelay(h2, "inproc://a"); !ok || d2 != time.Second {
		t.Fatalf("delay = %v ok = %v, want MinDelay floor of 1s", d2, ok)
	}
}

func TestHedgeFastFailingPrimaryReturnsForCorrection(t *testing.T) {
	// A primary that fails before the hedge delay must surface its
	// failure (for the corrective policies) rather than burn a hedge.
	fc := clock.NewFakeAtZero()
	primary := &scriptedService{failFor: 1000}
	backup := &scriptedService{}
	b, v, _ := protectedBus(t, fc,
		map[string]transport.HandlerFunc{
			"inproc://a": primary.handler(),
			"inproc://b": backup.handler(),
		},
		VEPConfig{
			Services:   []string{"inproc://a", "inproc://b"},
			Selection:  policy.SelectFirst,
			Protection: &policy.ProtectionPolicy{Name: "guard", Hedge: hedgeSpecForTest()},
		})
	seedTracker(b, "inproc://a", 50*time.Millisecond, 10)

	if _, err := v.Invoke(context.Background(), "", catalogReq(t)); err == nil {
		t.Fatal("expected the primary's failure to propagate")
	}
	if backup.count() != 0 {
		t.Fatalf("backup calls = %d, want 0 (no hedge for fast failure)", backup.count())
	}
	_ = b
}
