// Package bus implements wsBus, the paper's SOAP-messaging-layer
// middleware (§3.1): Virtual End Points (VEPs) that group functionally
// equivalent services behind one abstract endpoint, a message
// processing pipeline of inspectors and processing modules, policy-
// driven corrective adaptation (retries, substitution, concurrent
// invocation, skipping), QoS measurement, a retry queue with
// dead-letter handling for one-way messages, and gateway/transparent-
// proxy deployment modes.
package bus

import (
	"math/rand"
	"sort"
	"sync"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/qos"
)

// selector orders candidate service addresses by preference for one
// invocation. Implementations must be safe for concurrent use.
type selector interface {
	// order returns the candidates in preference order (most preferred
	// first). The returned slice is freshly allocated.
	order(candidates []string) []string
	// kind names the strategy for selection-outcome telemetry.
	kind() policy.SelectionKind
}

// newSelector builds the strategy for a selection kind ("a VEP can be
// configured to choose between registered services in round-robin
// fashion, or to select the best performing service...", §3.1(4)).
func newSelector(kind policy.SelectionKind, tracker *qos.Tracker, minSamples int, seed int64) selector {
	switch kind {
	case policy.SelectRoundRobin:
		return &roundRobinSelector{}
	case policy.SelectBestResponseTime:
		return &bestQoSSelector{tracker: tracker, minSamples: minSamples}
	case policy.SelectRandom:
		return &randomSelector{rng: rand.New(rand.NewSource(seed))}
	default:
		return firstSelector{}
	}
}

// firstSelector preserves registration order.
type firstSelector struct{}

func (firstSelector) kind() policy.SelectionKind { return policy.SelectFirst }

func (firstSelector) order(candidates []string) []string {
	out := make([]string, len(candidates))
	copy(out, candidates)
	return out
}

// roundRobinSelector rotates the starting point on every call.
type roundRobinSelector struct {
	mu   sync.Mutex
	next int
}

func (*roundRobinSelector) kind() policy.SelectionKind { return policy.SelectRoundRobin }

func (r *roundRobinSelector) order(candidates []string) []string {
	n := len(candidates)
	out := make([]string, 0, n)
	if n == 0 {
		return out
	}
	r.mu.Lock()
	start := r.next % n
	r.next++
	r.mu.Unlock()
	for i := 0; i < n; i++ {
		out = append(out, candidates[(start+i)%n])
	}
	return out
}

// bestQoSSelector prefers the lowest measured mean response time.
// Targets without enough samples come first (in registration order) so
// they get explored and measured before the selector settles on the
// best performer.
type bestQoSSelector struct {
	tracker    *qos.Tracker
	minSamples int
}

func (*bestQoSSelector) kind() policy.SelectionKind { return policy.SelectBestResponseTime }

func (b *bestQoSSelector) order(candidates []string) []string {
	type scored struct {
		addr  string
		known bool
		mean  int64
		idx   int
	}
	scores := make([]scored, 0, len(candidates))
	for i, addr := range candidates {
		s := scored{addr: addr, idx: i}
		if b.tracker != nil {
			snap := b.tracker.Snapshot(addr)
			if snap.Invocations-snap.Failures >= b.minSamples && snap.MeanResponse > 0 {
				s.known = true
				s.mean = int64(snap.MeanResponse)
			}
		}
		scores = append(scores, s)
	}
	sort.SliceStable(scores, func(i, j int) bool {
		si, sj := scores[i], scores[j]
		switch {
		case si.known != sj.known:
			return !si.known // explore unmeasured targets first
		case si.known:
			if si.mean != sj.mean {
				return si.mean < sj.mean
			}
			return si.idx < sj.idx
		default:
			return si.idx < sj.idx
		}
	})
	out := make([]string, 0, len(scores))
	for _, s := range scores {
		out = append(out, s.addr)
	}
	return out
}

// randomSelector shuffles candidates with a seeded RNG.
type randomSelector struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (*randomSelector) kind() policy.SelectionKind { return policy.SelectRandom }

func (r *randomSelector) order(candidates []string) []string {
	out := make([]string, len(candidates))
	copy(out, candidates)
	r.mu.Lock()
	r.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	r.mu.Unlock()
	return out
}
