package bus

import (
	"sort"
)

// UsageRecord summarizes metered traffic for one key — the "meter
// usage for subsequent billing to users" purpose of the Message Logger
// (§3.1(5)).
type UsageRecord struct {
	// Key is the metering dimension value (an instance ID, operation,
	// or VEP name).
	Key string
	// Messages is the number of metered messages.
	Messages int
	// Bytes is the total serialized message volume.
	Bytes int
	// Faults counts fault messages.
	Faults int
}

// UsageBy aggregates a message logger's retained entries along a
// dimension: "instance", "operation", or "vep". Results are sorted by
// descending byte volume (ties by key).
func UsageBy(logger *MessageLogger, dimension string) []UsageRecord {
	byKey := make(map[string]*UsageRecord)
	for _, e := range logger.Entries() {
		var key string
		switch dimension {
		case "instance":
			key = e.InstanceID
		case "operation":
			key = e.Operation
		default:
			key = e.VEP
		}
		if key == "" {
			key = "(unattributed)"
		}
		r := byKey[key]
		if r == nil {
			r = &UsageRecord{Key: key}
			byKey[key] = r
		}
		r.Messages++
		r.Bytes += e.Size
		if e.Fault {
			r.Faults++
		}
	}
	out := make([]UsageRecord, 0, len(byKey))
	for _, r := range byKey {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Key < out[j].Key
	})
	return out
}
