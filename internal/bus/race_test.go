package bus

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/qos"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/xmltree"
)

// These tests exist for `go test -race`: they hammer the selection
// strategies and the VEP registration surface from many goroutines and
// assert only basic invariants — the race detector does the real work.

func fastHandler() transport.HandlerFunc {
	return func(_ context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		op := req.PayloadName().Local
		return soap.NewRequest(xmltree.New("urn:scm", op+"Response")), nil
	}
}

func TestSelectorsConcurrentOrder(t *testing.T) {
	tracker := qos.NewTracker(time.Minute)
	sels := map[string]selector{
		"first":      firstSelector{},
		"roundRobin": &roundRobinSelector{},
		"bestQoS":    &bestQoSSelector{tracker: tracker, minSamples: 3},
		"random":     newSelector(policy.SelectRandom, nil, 0, 42),
	}
	candidates := []string{"inproc://a", "inproc://b", "inproc://c"}

	for name, sel := range sels {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						// Interleave QoS recording so bestQoS re-ranks
						// while other goroutines are ordering.
						tracker.Record(candidates[i%len(candidates)],
							time.Duration(1+g)*time.Millisecond, i%7 != 0)
						got := sel.order(candidates)
						if len(got) != len(candidates) {
							t.Errorf("order returned %d candidates, want %d", len(got), len(candidates))
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestRegisterDeregisterDuringInvoke(t *testing.T) {
	net := transport.NewNetwork()
	stable := []string{"inproc://a", "inproc://b"}
	for _, addr := range stable {
		net.Register(addr, fastHandler())
	}
	// Churned services exist on the network the whole time; only their
	// VEP membership flaps.
	var churned []string
	for i := 0; i < 4; i++ {
		addr := fmt.Sprintf("inproc://churn-%d", i)
		churned = append(churned, addr)
		net.Register(addr, fastHandler())
	}

	b := New(net, WithSeed(7))
	v, err := b.CreateVEP(VEPConfig{
		Name:      "Retailer",
		Contract:  scmContract(),
		Services:  stable,
		Selection: policy.SelectRoundRobin,
		Protection: &policy.ProtectionPolicy{
			Name:      "guard",
			Admission: &policy.AdmissionSpec{MaxInFlight: 32, MaxQueue: 32},
			Breaker:   &policy.BreakerSpec{FailureThreshold: 3, Cooldown: time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var invokers, churners sync.WaitGroup

	// Membership churn: register/deregister equivalent services while
	// invocations are in flight.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			addr := churned[i%len(churned)]
			v.RegisterService(addr)
			v.Services()
			v.BreakerStates()
			v.DeregisterService(addr)
		}
	}()

	// Invokers: every call must land on a registered handler and
	// produce a non-fault response.
	for g := 0; g < 8; g++ {
		invokers.Add(1)
		go func() {
			defer invokers.Done()
			for i := 0; i < 150; i++ {
				resp, err := v.Invoke(context.Background(), "", catalogReq(t))
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				if resp.IsFault() {
					t.Errorf("invoke returned fault: %s", resp.Fault.String)
					return
				}
			}
		}()
	}

	// Reconfiguring protection mid-flight must also be safe.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v.ApplyProtection(&policy.ProtectionPolicy{
				Name:      fmt.Sprintf("guard-%d", i),
				Admission: &policy.AdmissionSpec{MaxInFlight: 32, MaxQueue: 32},
			})
			v.AdmissionDepths()
			time.Sleep(time.Millisecond)
		}
	}()

	finished := make(chan struct{})
	go func() {
		invokers.Wait()
		close(stop)
		churners.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(30 * time.Second):
		t.Fatal("goroutines did not finish")
	}
}
