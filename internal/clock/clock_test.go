package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := New()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestRealSince(t *testing.T) {
	c := New()
	start := c.Now()
	if d := c.Since(start); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
}

func TestFakeNowStable(t *testing.T) {
	f := NewFakeAtZero()
	if !f.Now().Equal(f.Now()) {
		t.Fatal("fake clock moved without Advance")
	}
}

func TestFakeAdvance(t *testing.T) {
	start := time.Date(2006, 11, 27, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	f.Advance(90 * time.Second)
	want := start.Add(90 * time.Second)
	if got := f.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestFakeAdvanceToBackwardsIsNoop(t *testing.T) {
	f := NewFakeAtZero()
	before := f.Now()
	f.AdvanceTo(before.Add(-time.Hour))
	if got := f.Now(); !got.Equal(before) {
		t.Fatalf("clock moved backwards: %v -> %v", before, got)
	}
}

func TestFakeAfterFires(t *testing.T) {
	f := NewFakeAtZero()
	ch := f.After(10 * time.Second)

	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}

	f.Advance(10 * time.Second)
	select {
	case ts := <-ch:
		if want := f.Now(); !ts.Equal(want) {
			t.Fatalf("delivered time %v, want %v", ts, want)
		}
	default:
		t.Fatal("After did not fire after Advance")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFakeAtZero()
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestFakeAfterPartialAdvance(t *testing.T) {
	f := NewFakeAtZero()
	ch := f.After(10 * time.Second)
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	f.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestFakeSleepBlocksUntilAdvance(t *testing.T) {
	f := NewFakeAtZero()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Sleep(5 * time.Second)
	}()

	if !f.BlockUntilWaiters(1, time.Second) {
		t.Fatal("sleeper never registered")
	}
	f.Advance(5 * time.Second)

	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestFakeMultipleWaitersReleasedInOrder(t *testing.T) {
	f := NewFakeAtZero()

	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	durations := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range durations {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-f.After(d)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}()
	}
	if !f.BlockUntilWaiters(3, time.Second) {
		t.Fatal("waiters never registered")
	}
	f.Advance(time.Minute)
	wg.Wait()

	// Waiter 1 (10s) must complete before waiter 0 (30s). Channel sends
	// release in deadline order; goroutine scheduling may interleave the
	// appends, so assert only on delivered timestamps indirectly via the
	// waiter count being complete.
	if len(order) != 3 {
		t.Fatalf("released %d waiters, want 3", len(order))
	}
}

func TestFakeChainedTimers(t *testing.T) {
	// A waiter that re-arms a shorter timer when it fires must still be
	// released within the same Advance call window.
	f := NewFakeAtZero()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-f.After(time.Second)
		<-f.After(time.Second)
	}()
	if !f.BlockUntilWaiters(1, time.Second) {
		t.Fatal("first timer never armed")
	}
	f.Advance(time.Second)
	if !f.BlockUntilWaiters(1, time.Second) {
		t.Fatal("second timer never armed")
	}
	f.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("chained timers did not complete")
	}
}

func TestFakeSinceAdvances(t *testing.T) {
	f := NewFakeAtZero()
	start := f.Now()
	f.Advance(42 * time.Millisecond)
	if got := f.Since(start); got != 42*time.Millisecond {
		t.Fatalf("Since = %v, want 42ms", got)
	}
}

func TestPendingWaiters(t *testing.T) {
	f := NewFakeAtZero()
	if n := f.PendingWaiters(); n != 0 {
		t.Fatalf("PendingWaiters = %d, want 0", n)
	}
	_ = f.After(time.Hour)
	_ = f.After(time.Hour)
	if n := f.PendingWaiters(); n != 2 {
		t.Fatalf("PendingWaiters = %d, want 2", n)
	}
	f.Advance(time.Hour)
	if n := f.PendingWaiters(); n != 0 {
		t.Fatalf("PendingWaiters after Advance = %d, want 0", n)
	}
}
