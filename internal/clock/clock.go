// Package clock provides an injectable time source so that middleware
// components (retry queues, QoS windows, availability trackers, the
// workflow scheduler) can run against either the real wall clock or a
// deterministic fake clock driven by tests and simulations.
package clock

import (
	"sync"
	"time"
)

// Clock is the time source abstraction used throughout MASC. The zero
// configuration of every component defaults to the real clock; experiment
// harnesses inject a Fake clock so runs are deterministic and fast.
type Clock interface {
	// Now reports the current instant.
	Now() time.Time
	// After returns a channel that delivers the then-current time once
	// d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed.
	Sleep(d time.Duration)
	// Since reports the time elapsed since t.
	Since(t time.Time) time.Duration
}

// Real is the wall-clock implementation of Clock backed by package time.
type Real struct{}

var _ Clock = Real{}

// New returns the real wall clock.
func New() Clock { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Fake is a manually advanced clock. Goroutines blocked in Sleep or on an
// After channel are released when Advance moves the clock past their
// deadline. Fake is safe for concurrent use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

var _ Clock = (*Fake)(nil)

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFake returns a Fake clock positioned at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// NewFakeAtZero returns a Fake clock positioned at a fixed, arbitrary
// epoch. Useful when only relative time matters.
func NewFakeAtZero() *Fake {
	return NewFake(time.Date(2006, time.November, 27, 0, 0, 0, 0, time.UTC))
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock. The returned channel has capacity one, so the
// delivering Advance never blocks.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()

	ch := make(chan time.Time, 1)
	deadline := f.now.Add(d)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, &waiter{deadline: deadline, ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine Advances the
// clock past the deadline.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration {
	return f.Now().Sub(t)
}

// Advance moves the clock forward by d, releasing every waiter whose
// deadline has been reached in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	f.advanceToLocked(target)
	f.mu.Unlock()
}

// AdvanceTo moves the clock forward to t. Moving backwards is a no-op.
func (f *Fake) AdvanceTo(t time.Time) {
	f.mu.Lock()
	f.advanceToLocked(t)
	f.mu.Unlock()
}

func (f *Fake) advanceToLocked(target time.Time) {
	if target.Before(f.now) {
		return
	}
	// Release waiters in deadline order so chained timers (a released
	// waiter re-arming a shorter timer) behave as with a real clock.
	for {
		idx := -1
		for i, w := range f.waiters {
			if w.deadline.After(target) {
				continue
			}
			if idx == -1 || w.deadline.Before(f.waiters[idx].deadline) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		w := f.waiters[idx]
		f.waiters = append(f.waiters[:idx], f.waiters[idx+1:]...)
		if w.deadline.After(f.now) {
			f.now = w.deadline
		}
		w.ch <- f.now
	}
	f.now = target
}

// PendingWaiters reports how many goroutines are blocked waiting for the
// clock to advance. Intended for tests that need to synchronize with a
// component before advancing time.
func (f *Fake) PendingWaiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// BlockUntilWaiters polls until at least n waiters are registered or the
// real-time timeout elapses; it reports whether the condition was met.
// This lets tests deterministically hand off control to goroutines that
// are about to sleep on the fake clock.
func (f *Fake) BlockUntilWaiters(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if f.PendingWaiters() >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}
