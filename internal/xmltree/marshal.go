package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Marshal serializes the subtree rooted at e as a standalone XML
// document fragment. Namespace prefixes are generated deterministically
// (document order of first use) and declared on the root element.
func Marshal(w io.Writer, e *Element) error {
	m := &marshaler{prefixes: map[string]string{}}
	m.collect(e)
	return m.write(w, e, true)
}

// MarshalString serializes e and returns the result as a string.
func MarshalString(e *Element) (string, error) {
	var sb strings.Builder
	if err := Marshal(&sb, e); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// MustMarshalString serializes e, panicking on error. Marshalling an
// in-memory tree only fails on writer errors, which strings.Builder
// never produces.
func MustMarshalString(e *Element) string {
	s, err := MarshalString(e)
	if err != nil {
		panic(err)
	}
	return s
}

type marshaler struct {
	prefixes map[string]string // namespace URI -> prefix
	order    []string          // URIs in order of first use
}

func (m *marshaler) collect(e *Element) {
	m.need(e.Name.Space)
	for _, a := range e.Attrs {
		m.need(a.Name.Space)
	}
	for _, c := range e.Children {
		m.collect(c)
	}
}

func (m *marshaler) need(space string) {
	if space == "" {
		return
	}
	if _, ok := m.prefixes[space]; ok {
		return
	}
	m.prefixes[space] = "ns" + strconv.Itoa(len(m.order)+1)
	m.order = append(m.order, space)
}

func (m *marshaler) qname(n Name) string {
	if n.Space == "" {
		return n.Local
	}
	return m.prefixes[n.Space] + ":" + n.Local
}

func (m *marshaler) write(w io.Writer, e *Element, root bool) error {
	if _, err := fmt.Fprintf(w, "<%s", m.qname(e.Name)); err != nil {
		return err
	}
	if root {
		for _, uri := range m.order {
			if _, err := fmt.Fprintf(w, ` xmlns:%s="%s"`, m.prefixes[uri], escapeAttr(uri)); err != nil {
				return err
			}
		}
	}
	for _, a := range e.Attrs {
		if _, err := fmt.Fprintf(w, ` %s="%s"`, m.qname(a.Name), escapeAttr(a.Value)); err != nil {
			return err
		}
	}
	if len(e.Children) == 0 && e.Text == "" {
		_, err := io.WriteString(w, "/>")
		return err
	}
	if _, err := io.WriteString(w, ">"); err != nil {
		return err
	}
	if e.Text != "" {
		if err := escapeText(w, e.Text); err != nil {
			return err
		}
	}
	for _, c := range e.Children {
		if err := m.write(w, c, false); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>", m.qname(e.Name))
	return err
}

func escapeAttr(s string) string {
	var sb strings.Builder
	if err := xml.EscapeText(&sb, []byte(s)); err != nil {
		return s
	}
	return sb.String()
}

func escapeText(w io.Writer, s string) error {
	return xml.EscapeText(w, []byte(s))
}
