package xmltree

import (
	"strings"
	"testing"
)

// FuzzParseRoundTrip checks that anything Parse accepts survives a
// marshal/re-parse round trip unchanged, and that Parse never panics
// on arbitrary input.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a b="c">text</a>`,
		`<ns:a xmlns:ns="urn:x"><b/><c d="e&amp;f"/></ns:a>`,
		`<a><b>one</b><b>two</b></a>`,
		`<a xmlns="urn:d"><b xmlns="urn:e"/></a>`,
		`not xml at all`,
		`<a>`,
		`<a></b>`,
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		root, err := ParseString(doc)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out, err := MarshalString(root)
		if err != nil {
			t.Fatalf("marshal of parsed tree failed: %v", err)
		}
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("re-parse of marshaled tree failed: %v\n%s", err, out)
		}
		if !Equal(root, back) {
			t.Fatalf("round trip changed tree:\nin:  %s\nout: %s", doc, out)
		}
	})
}

// FuzzPathOperations checks that tree navigation never panics for
// arbitrary path segments.
func FuzzPathOperations(f *testing.F) {
	f.Add("a/b/c", "x")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, path, attr string) {
		root := MustParseString(`<r><a><b><c v="1">t</c></b></a></r>`)
		segs := strings.Split(path, "/")
		el := root.Path(segs...)
		if el != nil {
			_ = el.AttrValue("", attr)
			_ = el.DeepText()
		}
		_ = root.Find(func(e *Element) bool { return e.Name.Local == attr })
	})
}
