package xmltree

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	e, err := ParseString(`<order id="42"><item qty="2">widget</item></order>`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name.Local != "order" {
		t.Fatalf("root = %s, want order", e.Name.Local)
	}
	if v := e.AttrValue("", "id"); v != "42" {
		t.Fatalf("id = %q, want 42", v)
	}
	item := e.Child("", "item")
	if item == nil {
		t.Fatal("missing item child")
	}
	if item.Text != "widget" {
		t.Fatalf("item text = %q, want widget", item.Text)
	}
	if item.Parent() != e {
		t.Fatal("parent link not set")
	}
}

func TestParseNamespaces(t *testing.T) {
	doc := `<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/">
		<s:Body><m:getCatalog xmlns:m="urn:scm"/></s:Body></s:Envelope>`
	e, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name.Space != "http://schemas.xmlsoap.org/soap/envelope/" {
		t.Fatalf("root space = %q", e.Name.Space)
	}
	body := e.Child("http://schemas.xmlsoap.org/soap/envelope/", "Body")
	if body == nil {
		t.Fatal("missing Body")
	}
	op := body.Child("urn:scm", "getCatalog")
	if op == nil {
		t.Fatal("missing namespaced operation element")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"unbalanced", "<a><b></a>"},
		{"truncated", "<a><b>"},
		{"garbage", "not xml at all <"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.doc); err == nil {
				t.Fatalf("ParseString(%q) succeeded, want error", tt.doc)
			}
		})
	}
}

func TestParseStripsIndentation(t *testing.T) {
	e, err := ParseString("<a>\n  <b>x</b>\n  <c> y </c>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if e.Text != "" {
		t.Fatalf("container text = %q, want empty", e.Text)
	}
	if got := e.ChildText("", "c"); got != "y" {
		t.Fatalf("c text = %q, want trimmed %q", got, "y")
	}
}

func TestRoundTrip(t *testing.T) {
	docs := []string{
		`<order id="42"><item qty="2">widget</item><note/></order>`,
		`<s:Envelope xmlns:s="urn:env"><s:Body><op xmlns="urn:app"><x>1</x></op></s:Body></s:Envelope>`,
		`<p:policy xmlns:p="urn:p" p:name="retry&amp;go"><when event="&lt;fault&gt;"/></p:policy>`,
	}
	for _, doc := range docs {
		orig, err := ParseString(doc)
		if err != nil {
			t.Fatalf("parse %q: %v", doc, err)
		}
		out, err := MarshalString(orig)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("re-parse %q: %v", out, err)
		}
		if !Equal(orig, back) {
			t.Fatalf("round trip changed tree:\norig: %s\nout:  %s", doc, out)
		}
	}
}

func TestCopyIsDeepAndDetached(t *testing.T) {
	orig := MustParseString(`<a x="1"><b><c>t</c></b></a>`)
	cp := orig.Copy()
	if !Equal(orig, cp) {
		t.Fatal("copy not equal to original")
	}
	if cp.Parent() != nil {
		t.Fatal("copy parent should be nil")
	}
	cp.Child("", "b").Child("", "c").Text = "changed"
	if orig.Child("", "b").Child("", "c").Text != "t" {
		t.Fatal("mutation of copy leaked into original")
	}
}

func TestInsertRemoveReplace(t *testing.T) {
	root := New("", "root")
	a, b, c := New("", "a"), New("", "b"), New("", "c")
	root.Append(a)
	root.Append(c)
	if err := root.InsertAt(1, b); err != nil {
		t.Fatal(err)
	}
	if got := childLocals(root); got != "a,b,c" {
		t.Fatalf("after insert: %s", got)
	}
	if !root.RemoveChild(b) {
		t.Fatal("RemoveChild returned false")
	}
	if got := childLocals(root); got != "a,c" {
		t.Fatalf("after remove: %s", got)
	}
	if root.RemoveChild(b) {
		t.Fatal("double remove returned true")
	}
	d := New("", "d")
	if !root.ReplaceChild(c, d) {
		t.Fatal("ReplaceChild returned false")
	}
	if got := childLocals(root); got != "a,d" {
		t.Fatalf("after replace: %s", got)
	}
	if d.Parent() != root {
		t.Fatal("replacement not reparented")
	}
	if err := root.InsertAt(99, c); err == nil {
		t.Fatal("InsertAt out of range succeeded")
	}
}

func childLocals(e *Element) string {
	names := make([]string, 0, len(e.Children))
	for _, c := range e.Children {
		names = append(names, c.Name.Local)
	}
	return strings.Join(names, ",")
}

func TestSetAttrOverwrites(t *testing.T) {
	e := New("", "a")
	e.SetAttr("", "k", "1")
	e.SetAttr("", "k", "2")
	if len(e.Attrs) != 1 {
		t.Fatalf("attrs = %d, want 1", len(e.Attrs))
	}
	if v := e.AttrValue("", "k"); v != "2" {
		t.Fatalf("k = %q, want 2", v)
	}
}

func TestFindAndFindAll(t *testing.T) {
	e := MustParseString(`<r><x v="1"/><y><x v="2"/></y><x v="3"/></r>`)
	first := e.Find(func(n *Element) bool { return n.Name.Local == "x" })
	if first == nil || first.AttrValue("", "v") != "1" {
		t.Fatalf("Find = %v", first)
	}
	all := e.FindAll(func(n *Element) bool { return n.Name.Local == "x" })
	if len(all) != 3 {
		t.Fatalf("FindAll = %d elements, want 3", len(all))
	}
	// Document order.
	if all[1].AttrValue("", "v") != "2" || all[2].AttrValue("", "v") != "3" {
		t.Fatal("FindAll not in document order")
	}
}

func TestDeepText(t *testing.T) {
	e := MustParseString(`<r><a>foo</a><b><c>bar</c></b></r>`)
	if got := e.DeepText(); got != "foobar" {
		t.Fatalf("DeepText = %q", got)
	}
}

func TestPath(t *testing.T) {
	e := MustParseString(`<r><a><b><c>leaf</c></b></a></r>`)
	if got := e.Path("a", "b", "c"); got == nil || got.Text != "leaf" {
		t.Fatalf("Path = %v", got)
	}
	if got := e.Path("a", "missing"); got != nil {
		t.Fatal("Path to missing element should be nil")
	}
}

func TestEqualAttrOrderInsensitive(t *testing.T) {
	a := MustParseString(`<e x="1" y="2"/>`)
	b := MustParseString(`<e y="2" x="1"/>`)
	if !Equal(a, b) {
		t.Fatal("Equal should ignore attribute order")
	}
	c := MustParseString(`<e x="1" y="3"/>`)
	if Equal(a, c) {
		t.Fatal("Equal should detect differing attribute values")
	}
}

func TestEqualChildOrderSensitive(t *testing.T) {
	a := MustParseString(`<e><x/><y/></e>`)
	b := MustParseString(`<e><y/><x/></e>`)
	if Equal(a, b) {
		t.Fatal("Equal should be child-order sensitive")
	}
}

func TestChildrenNamed(t *testing.T) {
	e := MustParseString(`<r xmlns:a="urn:a"><a:x/><x/><a:x/></r>`)
	if got := len(e.ChildrenNamed("urn:a", "x")); got != 2 {
		t.Fatalf("namespaced ChildrenNamed = %d, want 2", got)
	}
	if got := len(e.ChildrenNamed("", "x")); got != 3 {
		t.Fatalf("any-namespace ChildrenNamed = %d, want 3", got)
	}
}

// TestRoundTripQuick property-tests that text content survives a
// marshal/parse round trip for arbitrary printable strings.
func TestRoundTripQuick(t *testing.T) {
	f := func(text string) bool {
		text = strings.TrimSpace(sanitize(text))
		e := New("urn:t", "doc")
		e.Text = text
		out, err := MarshalString(e)
		if err != nil {
			return false
		}
		back, err := ParseString(out)
		if err != nil {
			return false
		}
		return back.Text == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// sanitize removes characters not representable in XML 1.0 character data.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == 0x9 || r == 0xA || r == 0xD ||
			(r >= 0x20 && r <= 0xD7FF) ||
			(r >= 0xE000 && r <= 0xFFFD) {
			return r
		}
		return -1
	}, s)
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errFail
	}
	w.n -= len(p)
	if w.n < 0 {
		return len(p) + w.n, errFail
	}
	return len(p), nil
}

var errFail = errors.New("sink full")

func TestMarshalWriterErrors(t *testing.T) {
	e := MustParseString(`<a b="c"><d>text</d><e/></a>`)
	full, err := MarshalString(e)
	if err != nil {
		t.Fatal(err)
	}
	// Failing at every possible prefix must surface the error, never
	// panic or succeed.
	for n := 0; n < len(full); n++ {
		if err := Marshal(&failWriter{n: n}, e); err == nil {
			t.Fatalf("Marshal with %d-byte sink succeeded", n)
		}
	}
}

func TestMustHelpersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseString on junk did not panic")
		}
	}()
	MustParseString("<broken")
}
