// Package xmltree provides a namespace-aware, mutable XML element tree.
//
// It is the in-memory representation for every XML document the
// middleware touches: SOAP envelopes and payloads, WSDL contracts,
// WS-Policy4MASC policy documents, and workflow process definitions.
// The XPath engine (internal/xpath) evaluates against this tree, and the
// wsBus message-adaptation modules transform it in place.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Name identifies an element or attribute by namespace URI and local name.
type Name struct {
	Space string // namespace URI; empty means no namespace
	Local string
}

// String renders a Name as {space}local or just local.
func (n Name) String() string {
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

// Attr is a single attribute on an element.
type Attr struct {
	Name  Name
	Value string
}

// Element is a node in the tree. Children holds child elements in
// document order; character data interleaved with children is collected
// into Text (concatenated), which is sufficient for the data-oriented
// documents (SOAP, WSDL, policies) this middleware processes.
type Element struct {
	Name     Name
	Attrs    []Attr
	Children []*Element
	Text     string

	parent *Element
}

// New constructs an element with the given namespace and local name.
func New(space, local string) *Element {
	return &Element{Name: Name{Space: space, Local: local}}
}

// NewText constructs a leaf element holding character data.
func NewText(space, local, text string) *Element {
	e := New(space, local)
	e.Text = text
	return e
}

// Parent returns the element's parent, or nil at the root.
func (e *Element) Parent() *Element { return e.parent }

// Append adds child as the last child of e and reparents it.
func (e *Element) Append(child *Element) *Element {
	child.parent = e
	e.Children = append(e.Children, child)
	return e
}

// InsertAt inserts child at position i (0 <= i <= len(Children)).
func (e *Element) InsertAt(i int, child *Element) error {
	if i < 0 || i > len(e.Children) {
		return fmt.Errorf("xmltree: insert index %d out of range [0,%d]", i, len(e.Children))
	}
	child.parent = e
	e.Children = append(e.Children, nil)
	copy(e.Children[i+1:], e.Children[i:])
	e.Children[i] = child
	return nil
}

// RemoveChild removes the first child identical (pointer-equal) to c and
// reports whether it was found.
func (e *Element) RemoveChild(c *Element) bool {
	for i, ch := range e.Children {
		if ch == c {
			e.Children = append(e.Children[:i], e.Children[i+1:]...)
			c.parent = nil
			return true
		}
	}
	return false
}

// ReplaceChild swaps the first child pointer-equal to old with repl and
// reports whether old was found.
func (e *Element) ReplaceChild(old, repl *Element) bool {
	for i, ch := range e.Children {
		if ch == old {
			repl.parent = e
			e.Children[i] = repl
			old.parent = nil
			return true
		}
	}
	return false
}

// SetAttr sets (or overwrites) an attribute.
func (e *Element) SetAttr(space, local, value string) *Element {
	for i := range e.Attrs {
		if e.Attrs[i].Name.Space == space && e.Attrs[i].Name.Local == local {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Name: Name{Space: space, Local: local}, Value: value})
	return e
}

// Attr returns the value of the named attribute and whether it exists.
// An empty space matches only attributes with no namespace.
func (e *Element) Attr(space, local string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// AttrValue returns the attribute value or "" when absent.
func (e *Element) AttrValue(space, local string) string {
	v, _ := e.Attr(space, local)
	return v
}

// Child returns the first child element with the given name, or nil.
// An empty space matches any namespace.
func (e *Element) Child(space, local string) *Element {
	for _, c := range e.Children {
		if c.Name.Local == local && (space == "" || c.Name.Space == space) {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given name. An empty
// space matches any namespace.
func (e *Element) ChildrenNamed(space, local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Name.Local == local && (space == "" || c.Name.Space == space) {
			out = append(out, c)
		}
	}
	return out
}

// ChildText returns the text of the first matching child, or "".
func (e *Element) ChildText(space, local string) string {
	if c := e.Child(space, local); c != nil {
		return c.Text
	}
	return ""
}

// Path descends through a chain of local names (any namespace) and
// returns the final element, or nil when any hop is missing.
func (e *Element) Path(locals ...string) *Element {
	cur := e
	for _, l := range locals {
		cur = cur.Child("", l)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// Copy returns a deep copy of the subtree rooted at e. The copy's parent
// is nil.
func (e *Element) Copy() *Element {
	cp := &Element{Name: e.Name, Text: e.Text}
	if len(e.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(e.Attrs))
		copy(cp.Attrs, e.Attrs)
	}
	if len(e.Children) > 0 {
		cp.Children = make([]*Element, 0, len(e.Children))
		for _, c := range e.Children {
			cc := c.Copy()
			cc.parent = cp
			cp.Children = append(cp.Children, cc)
		}
	}
	return cp
}

// Walk visits e and every descendant in document order. Returning false
// from fn prunes the walk below that element.
func (e *Element) Walk(fn func(*Element) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// Find returns the first descendant (not including e) for which pred
// returns true, or nil.
func (e *Element) Find(pred func(*Element) bool) *Element {
	var found *Element
	for _, c := range e.Children {
		c.Walk(func(n *Element) bool {
			if found != nil {
				return false
			}
			if pred(n) {
				found = n
				return false
			}
			return true
		})
		if found != nil {
			break
		}
	}
	return found
}

// FindAll returns every descendant (not including e) matching pred, in
// document order.
func (e *Element) FindAll(pred func(*Element) bool) []*Element {
	var out []*Element
	for _, c := range e.Children {
		c.Walk(func(n *Element) bool {
			if pred(n) {
				out = append(out, n)
			}
			return true
		})
	}
	return out
}

// DeepText concatenates the text content of e and all descendants in
// document order, matching the XPath string-value of an element node.
func (e *Element) DeepText() string {
	var sb strings.Builder
	e.Walk(func(n *Element) bool {
		sb.WriteString(n.Text)
		return true
	})
	return sb.String()
}

// Equal reports deep structural equality of two subtrees: names, text,
// attribute sets (order-insensitive), and children (order-sensitive).
func Equal(a, b *Element) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Text != b.Text || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	aa := append([]Attr(nil), a.Attrs...)
	ba := append([]Attr(nil), b.Attrs...)
	less := func(s []Attr) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].Name.Space != s[j].Name.Space {
				return s[i].Name.Space < s[j].Name.Space
			}
			return s[i].Name.Local < s[j].Name.Local
		}
	}
	sort.Slice(aa, less(aa))
	sort.Slice(ba, less(ba))
	for i := range aa {
		if aa[i] != ba[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Parse reads one XML document from r and returns its root element.
func Parse(r io.Reader) (*Element, error) {
	dec := xml.NewDecoder(r)
	var root *Element
	var stack []*Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := New(t.Name.Space, t.Name.Local)
			for _, a := range t.Attr {
				// Drop namespace declarations; the decoder has already
				// resolved prefixes into Name.Space.
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue
				}
				el.Attrs = append(el.Attrs, Attr{
					Name:  Name{Space: a.Name.Space, Local: a.Name.Local},
					Value: a.Value,
				})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = el
			} else {
				stack[len(stack)-1].Append(el)
			}
			stack = append(stack, el)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := string(t)
				if strings.TrimSpace(text) != "" || stack[len(stack)-1].Text != "" {
					stack[len(stack)-1].Text += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unexpected EOF inside element %s", stack[len(stack)-1].Name.Local)
	}
	// Whitespace-only text on elements that have children is formatting
	// noise from indented documents; strip it.
	root.Walk(func(e *Element) bool {
		if len(e.Children) > 0 && strings.TrimSpace(e.Text) == "" {
			e.Text = ""
		} else {
			e.Text = strings.TrimSpace(e.Text)
		}
		return true
	})
	return root, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Element, error) {
	return Parse(strings.NewReader(s))
}

// MustParseString parses s and panics on error. For tests and embedded
// static documents only.
func MustParseString(s string) *Element {
	e, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return e
}
