module github.com/masc-project/masc

go 1.22
