# Convenience targets for the MASC reproduction.

GO ?= go
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -X github.com/masc-project/masc/internal/version.Version=$(VERSION)

.PHONY: all build test race bench experiments examples lint cover

all: test

# Builds version-stamped binaries into ./bin (mascd -version and
# /healthz report it).
build:
	$(GO) build -ldflags '$(LDFLAGS)' -o bin/ ./cmd/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Regenerates every table/figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/scmbench -all
	$(GO) run ./cmd/stocktrade

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/stocktrading
	$(GO) run ./examples/supplychain
	$(GO) run ./examples/brokervep
	$(GO) run ./examples/processhost

lint:
	$(GO) vet ./...
	gofmt -l . && test -z "$$(gofmt -l .)"

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1
