// Package masc_test holds the top-level benchmark harness: one
// benchmark family per paper artifact (see EXPERIMENTS.md for the
// mapping). The experiment binaries (cmd/scmbench) produce the
// paper-formatted tables; these benches expose the same machinery to
// `go test -bench` for profiling and regression tracking.
package masc_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/core"
	"github.com/masc-project/masc/internal/faultinject"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/stocktrade"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
	"github.com/masc-project/masc/internal/xmltree"
	"github.com/masc-project/masc/internal/xpath"
)

const benchRecoveryPolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="bench-recovery">
  <AdaptationPolicy name="retry-then-failover" subject="vep:Retailer" priority="10">
    <OnEvent type="fault.detected"/>
    <Actions>
      <Retry maxAttempts="3" delay="100us"/>
      <Substitute selection="bestResponseTime"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

// benchSCM deploys four retailers; faulty==true gives retailer 0 the
// Table 1 outage profile.
func benchSCM(b *testing.B, faulty bool) *scm.Deployment {
	b.Helper()
	net := transport.NewNetwork()
	cfg := scm.DeployConfig{Retailers: 4}
	if faulty {
		inj := faultinject.NewRandomOutages(time.Now(), 20*time.Millisecond, 2*time.Millisecond, 42)
		inj.SetFailureLatency(100 * time.Microsecond)
		cfg.RetailerInjectors = map[int]faultinject.Injector{0: inj}
	}
	d, err := scm.Deploy(net, nil, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchBus(b *testing.B, d *scm.Deployment, policyXML string) *bus.Bus {
	b.Helper()
	repo := policy.NewRepository()
	if policyXML != "" {
		if _, err := repo.LoadXML(policyXML); err != nil {
			b.Fatal(err)
		}
	}
	gw := bus.New(d.Net, bus.WithPolicyRepository(repo), bus.WithSeed(42))
	if _, err := gw.CreateVEP(bus.VEPConfig{
		Name:      "Retailer",
		Services:  d.RetailerAddrs,
		Contract:  scm.RetailerContract(),
		Selection: policy.SelectRoundRobin,
	}); err != nil {
		b.Fatal(err)
	}
	return gw
}

func getCatalog(b *testing.B, invoker transport.Invoker, target string, padding int) {
	b.Helper()
	env := soap.NewRequest(scm.NewGetCatalogRequest("tv", padding))
	soap.Addressing{To: target, Action: "getCatalog"}.Apply(env)
	resp, err := invoker.Invoke(context.Background(), target, env)
	if err == nil && resp.IsFault() {
		err = resp.Fault
	}
	// Failures are expected under fault injection; the bench measures
	// the latency distribution including failed attempts, like the
	// paper's load generator.
	_ = err
}

// --- Table 1 (E1): direct vs mediated under faults ---

func BenchmarkTable1DirectFaultyRetailer(b *testing.B) {
	d := benchSCM(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		getCatalog(b, d.Net, scm.RetailerAddr(0), 0)
	}
}

func BenchmarkTable1DirectHealthyRetailer(b *testing.B) {
	d := benchSCM(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		getCatalog(b, d.Net, scm.RetailerAddr(2), 0)
	}
}

func BenchmarkTable1VEPWithRecovery(b *testing.B) {
	d := benchSCM(b, true)
	gw := benchBus(b, d, benchRecoveryPolicies)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		getCatalog(b, gw, "vep:Retailer", 0)
	}
}

// --- Figure 5 (E2): RTT vs request size, direct vs bus ---

func BenchmarkFigure5(b *testing.B) {
	for _, sizeKB := range []int{1, 16, 64} {
		for _, mode := range []string{"direct", "bus"} {
			b.Run(fmt.Sprintf("%s-%dKB", mode, sizeKB), func(b *testing.B) {
				d := benchSCM(b, false)
				var invoker transport.Invoker = d.Net
				target := scm.RetailerAddr(0)
				if mode == "bus" {
					gw := benchBus(b, d, "")
					v, err := gw.VEP("Retailer")
					if err != nil {
						b.Fatal(err)
					}
					v.Pipeline().Append(bus.NewMessageLogger(time.Now, 1<<16))
					invoker, target = gw, "vep:Retailer"
				}
				b.SetBytes(int64(sizeKB) * 1024)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					getCatalog(b, invoker, target, sizeKB*1024)
				}
			})
		}
	}
}

// --- Throughput (E3): parallel load through the bus ---

func BenchmarkThroughput(b *testing.B) {
	for _, mode := range []string{"direct", "bus"} {
		b.Run(mode, func(b *testing.B) {
			d := benchSCM(b, false)
			var invoker transport.Invoker = d.Net
			target := scm.RetailerAddr(0)
			if mode == "bus" {
				invoker, target = benchBus(b, d, ""), "vep:Retailer"
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					getCatalog(b, invoker, target, 0)
				}
			})
		})
	}
}

// --- Customization (E4): static customization cost per instance ---

func BenchmarkCustomizationStatic(b *testing.B) {
	net := transport.NewNetwork()
	if _, err := stocktrade.Deploy(net, nil, 1); err != nil {
		b.Fatal(err)
	}
	stack := core.NewStack(net)
	defer stack.Close()
	if err := stack.LoadPolicies(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="bench">
  <AdaptationPolicy name="add-cc" subject="TradingProcess" kind="customization" layer="process" priority="5">
    <OnEvent type="process.started"/>
    <Condition>//order/placeOrder/Market != 'domestic'</Condition>
    <Actions>
      <AddActivity anchor="Analyze" position="after">
        <Activity><invoke name="CC" endpoint="inproc://trade/currency-1" operation="convert" input="order"/></Activity>
      </AddActivity>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`); err != nil {
		b.Fatal(err)
	}
	def, err := workflow.ParseDefinitionString(stocktrade.BaseProcessXML)
	if err != nil {
		b.Fatal(err)
	}
	stack.Engine.Deploy(def)
	order, err := xmltree.ParseString(stocktrade.NewOrderPayload("international", "Japan", "corporate", 50000, "buy"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := stack.Engine.Start("TradingProcess", map[string]*xmltree.Element{"order": order})
		if err != nil {
			b.Fatal(err)
		}
		if st, err := inst.Wait(10 * time.Second); err != nil || st != workflow.StateCompleted {
			b.Fatalf("state=%s err=%v", st, err)
		}
	}
}

// --- Ablations (E8) ---

// BenchmarkAblationPolicyLookup compares the object policy repository
// against re-parsing policies per adaptation decision (§3.2's planned
// optimization), measured on the decision path alone.
func BenchmarkAblationPolicyLookup(b *testing.B) {
	d := benchSCM(b, true)

	b.Run("object-repository", func(b *testing.B) {
		gw := benchBus(b, d, benchRecoveryPolicies)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			getCatalog(b, gw, "vep:Retailer", 0)
		}
	})
	b.Run("reparse-per-decision", func(b *testing.B) {
		repo := policy.NewRepository()
		gw := bus.New(d.Net,
			bus.WithPolicyRepository(repo),
			bus.WithPolicySource(func() *policy.Repository {
				r := policy.NewRepository()
				_, _ = r.LoadXML(benchRecoveryPolicies)
				return r
			}))
		if _, err := gw.CreateVEP(bus.VEPConfig{
			Name: "Retailer", Services: d.RetailerAddrs,
			Contract: scm.RetailerContract(), Selection: policy.SelectRoundRobin,
		}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			getCatalog(b, gw, "vep:Retailer", 0)
		}
	})
}

// BenchmarkAblationListener compares goroutine-per-request dispatch
// against a fixed worker pool (§3.2's listener critique).
func BenchmarkAblationListener(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{{"spawn-per-request", 0}, {"worker-pool-8", 8}} {
		b.Run(mode.name, func(b *testing.B) {
			d := benchSCM(b, false)
			l := bus.NewListener(benchBus(b, d, ""), mode.workers)
			defer l.Close()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					getCatalog(b, l, "vep:Retailer", 0)
				}
			})
		})
	}
}

// --- Micro-benchmarks of the hot substrate paths ---

func BenchmarkPolicyParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := policy.ParseString(benchRecoveryPolicies); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSOAPRoundTrip(b *testing.B) {
	env := soap.NewRequest(scm.NewGetCatalogRequest("tv", 1024))
	soap.Addressing{MessageID: "m1", To: "x", Action: "getCatalog"}.Apply(env)
	text, err := env.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := env.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := soap.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXPathEvaluate(b *testing.B) {
	doc := soap.NewRequest(scm.NewSubmitOrderRequest("C1", []scm.OrderItem{
		{SKU: "605001", Qty: 2}, {SKU: "605002", Qty: 1},
	}, 0)).ToXML()
	expr := xpath.MustCompile("count(//item[number(qty) > 1]) = 1 and //customerID = 'C1'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := expr.EvalBool(doc, xpath.Context{})
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

func BenchmarkWorkflowInstance(b *testing.B) {
	ri := transport.InvokerFunc(func(_ context.Context, _ string, req *soap.Envelope) (*soap.Envelope, error) {
		return soap.NewRequest(xmltree.New("urn:b", "ok")), nil
	})
	engine := workflow.NewEngine(ri)
	def, err := workflow.NewDefinition("bench",
		workflow.NewSequence("main",
			workflow.NewInvoke("i1", workflow.InvokeSpec{Endpoint: "a", Operation: "op1"}),
			workflow.NewInvoke("i2", workflow.InvokeSpec{Endpoint: "b", Operation: "op2"}),
			workflow.NewInvoke("i3", workflow.InvokeSpec{Endpoint: "c", Operation: "op3"}),
		))
	if err != nil {
		b.Fatal(err)
	}
	engine.Deploy(def)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := engine.Start("bench", nil)
		if err != nil {
			b.Fatal(err)
		}
		if st, err := inst.Wait(10 * time.Second); err != nil || st != workflow.StateCompleted {
			b.Fatalf("state=%s err=%v", st, err)
		}
	}
}
