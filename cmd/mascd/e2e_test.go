package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
)

// e2ePolicies is the Table 1 recovery policy with test-speed delays:
// retry the faulty service once, then substitute another retailer.
const e2ePolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="gateway-recovery">
  <AdaptationPolicy name="retry-then-failover" subject="vep:Retailer" priority="10" kind="correction">
    <OnEvent type="fault.detected"/>
    <Actions>
      <Retry maxAttempts="1" delay="1ms"/>
      <Substitute selection="first"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

// e2eDaemon builds a daemon whose Retailer VEP lists a dead backend
// first, so every request exercises retry + failover before
// succeeding on a live retailer.
func e2eDaemon(t *testing.T) *daemon {
	t.Helper()
	network := transport.NewNetwork()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
	if err != nil {
		t.Fatal(err)
	}
	repo := policy.NewRepository()
	if _, err := repo.LoadXML(e2ePolicies); err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(0)
	dec := decision.NewRecorder(0, tel.Registry())
	gateway := bus.New(network, bus.WithPolicyRepository(repo), bus.WithTelemetry(tel),
		bus.WithDecisions(dec))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:      "Retailer",
		Services:  append([]string{"inproc://scm/dead"}, deployment.RetailerAddrs...),
		Contract:  scm.RetailerContract(),
		Selection: policy.SelectFirst,
	}); err != nil {
		t.Fatal(err)
	}
	d := &daemon{
		gateway:   gateway,
		network:   network,
		repo:      repo,
		tel:       tel,
		start:     time.Now(),
		engine:    workflow.NewEngine(gateway, workflow.WithTelemetry(tel)),
		decisions: dec,
	}
	if err := d.setupWorkflow(); err != nil {
		t.Fatal(err)
	}
	return d
}

// journalEntry mirrors the telemetry.Entry JSON shape the endpoints
// serve, with the level decoded as its name.
type journalEntry struct {
	Level        string            `json:"level"`
	Kind         string            `json:"kind"`
	Component    string            `json:"component"`
	Message      string            `json:"message"`
	Conversation string            `json:"conversation"`
	Trace        string            `json:"trace"`
	Fields       map[string]string `json:"fields"`
}

func getJournal(t *testing.T, srv *httptest.Server, path string) []journalEntry {
	t.Helper()
	hr, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("GET %s status = %d", path, hr.StatusCode)
	}
	var page struct {
		Count   int            `json:"count"`
		Entries []journalEntry `json:"entries"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&page); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	if page.Count != len(page.Entries) {
		t.Fatalf("GET %s count = %d, entries = %d", path, page.Count, len(page.Entries))
	}
	return page.Entries
}

// TestGatewayExchangeFullyCorrelated drives one SOAP request through
// the HTTP gateway with a recovery (retry on a dead backend, then
// failover) and asserts the exchange record, its log lines, and the
// SLA/fault audit trail all share the correlation ID of the trace at
// /traces/{id}.
func TestGatewayExchangeFullyCorrelated(t *testing.T) {
	d := e2eDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("tv", 0))
	soap.Addressing{To: "vep:Retailer", Action: "getCatalog"}.Apply(req)
	resp, err := inv.Invoke(context.Background(), srv.URL+"/vep/Retailer", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsFault() {
		t.Fatalf("fault after failover: %v", resp.Fault)
	}

	// The response carries the gateway-assigned conversation ID: the
	// master correlation key across journal, logs, audit, and trace.
	conv := soap.ConversationID(resp)
	if !strings.HasPrefix(conv, "urn:masc:conv:") {
		t.Fatalf("response conversation = %q", conv)
	}
	q := "?conversation=" + url.QueryEscape(conv)

	// /messages holds the exchange record: recovered outcome, both
	// attempts counted.
	msgs := getJournal(t, srv, "/messages"+q)
	if len(msgs) != 1 {
		t.Fatalf("messages = %+v", msgs)
	}
	m := msgs[0]
	if m.Kind != "message" || m.Component != "bus" || m.Conversation != conv {
		t.Fatalf("message entry = %+v", m)
	}
	if m.Fields["outcome"] != "ok" || m.Fields["vep"] != "Retailer" || m.Fields["operation"] != "getCatalog" {
		t.Fatalf("message fields = %+v", m.Fields)
	}
	if n, _ := strconv.Atoi(m.Fields["attempts"]); n < 3 { // initial + retry + failover
		t.Fatalf("attempts = %q, want >= 3", m.Fields["attempts"])
	}

	// /logs holds the per-attempt log lines and the audit trail.
	logs := getJournal(t, srv, "/logs"+q)
	var attemptLines, monitorAudits int
	var adaptation *journalEntry
	for i, e := range logs {
		if e.Conversation != conv {
			t.Fatalf("log entry without conversation: %+v", e)
		}
		switch {
		case e.Kind == "log" && e.Component == "bus" && strings.HasPrefix(e.Message, "attempt "):
			attemptLines++
		case e.Kind == "audit" && e.Component == "monitor":
			monitorAudits++
		case e.Kind == "audit" && e.Fields["policy"] == "retry-then-failover":
			adaptation = &logs[i]
		}
	}
	if attemptLines < 3 {
		t.Fatalf("attempt log lines = %d, want >= 3\n%+v", attemptLines, logs)
	}
	if monitorAudits == 0 {
		t.Fatalf("no monitor fault audit entries\n%+v", logs)
	}
	if adaptation == nil {
		t.Fatalf("no adaptation audit entry\n%+v", logs)
	}
	if adaptation.Fields["failed_target"] != "inproc://scm/dead" || adaptation.Fields["served_by"] == "" {
		t.Fatalf("adaptation audit fields = %+v", adaptation.Fields)
	}

	// The trace view links back to the same correlation ID.
	hr, err := srv.Client().Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var sums []telemetry.TraceSummary
	err = json.NewDecoder(hr.Body).Decode(&sums)
	hr.Body.Close()
	if err != nil || len(sums) != 1 {
		t.Fatalf("traces = %+v err = %v", sums, err)
	}
	hr2, err := srv.Client().Get(srv.URL + "/traces/" + sums[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var det telemetry.TraceDetail
	err = json.NewDecoder(hr2.Body).Decode(&det)
	hr2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if det.Conversation != conv {
		t.Fatalf("trace conversation = %q, want %q", det.Conversation, conv)
	}
	if det.JournalEntries == 0 {
		t.Fatal("trace links no journal entries")
	}
	if !strings.Contains(det.LogsURL, url.QueryEscape(conv)) || !strings.Contains(det.MessagesURL, url.QueryEscape(conv)) {
		t.Fatalf("journal links = %q %q", det.LogsURL, det.MessagesURL)
	}

	// The message record carries the trace ID too, so either key joins
	// the same exchange.
	if m.Trace != sums[0].ID {
		t.Fatalf("message trace = %q, want %q", m.Trace, sums[0].ID)
	}

	// The decision provenance for the exchange shares the same keys:
	// the adaptation record that explains the recovery carries the
	// conversation ID of the journal entries and the trace ID of the
	// span tree, so "why did it adapt?" joins both planes.
	hr3, err := srv.Client().Get(srv.URL + "/api/v1/decisions?conversation=" + url.QueryEscape(conv))
	if err != nil {
		t.Fatal(err)
	}
	var page decision.Page
	err = json.NewDecoder(hr3.Body).Decode(&page)
	hr3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if page.Count == 0 {
		t.Fatal("no decision records for the conversation")
	}
	var adapted *decision.Record
	for i, rec := range page.Records {
		if rec.Conversation != conv {
			t.Fatalf("decision record with wrong conversation: %+v", rec)
		}
		if rec.Policy == "retry-then-failover" && rec.Verdict == decision.VerdictMatched {
			adapted = &page.Records[i]
		}
	}
	if adapted == nil {
		t.Fatalf("no matched retry-then-failover decision\n%+v", page.Records)
	}
	if adapted.Trace != sums[0].ID {
		t.Fatalf("decision trace = %q, want %q", adapted.Trace, sums[0].ID)
	}
	if adapted.Action != "Retry+Substitute" {
		t.Fatalf("decision action = %q", adapted.Action)
	}
	if !strings.HasPrefix(adapted.Outcome, "served_by:") {
		t.Fatalf("decision outcome = %q", adapted.Outcome)
	}
}

// TestGatewayAdoptsPropagatedTraceContext sends a request already
// carrying a MASC TraceID header and asserts the gateway joins that
// trace instead of starting a fresh one.
func TestGatewayAdoptsPropagatedTraceContext(t *testing.T) {
	d := e2eDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("tv", 0))
	soap.Addressing{To: "vep:Retailer", Action: "getCatalog"}.Apply(req)
	soap.SetTraceContext(req, "trace-upstream-42", "s1")
	resp, err := inv.Invoke(context.Background(), srv.URL+"/vep/Retailer", req)
	if err != nil || resp.IsFault() {
		t.Fatalf("resp = %+v err = %v", resp, err)
	}

	hr, err := srv.Client().Get(srv.URL + "/traces/trace-upstream-42")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("adopted trace status = %d", hr.StatusCode)
	}
	var det telemetry.TraceDetail
	if err := json.NewDecoder(hr.Body).Decode(&det); err != nil {
		t.Fatal(err)
	}
	if det.Root.Name != "gateway vep:Retailer" || det.JournalEntries == 0 {
		t.Fatalf("adopted trace = %+v", det)
	}

	// The journal entries for the exchange carry the adopted ID.
	msgs := getJournal(t, srv, "/messages?trace="+url.QueryEscape("trace-upstream-42"))
	if len(msgs) != 1 || msgs[0].Trace != "trace-upstream-42" {
		t.Fatalf("messages by adopted trace = %+v", msgs)
	}
}
