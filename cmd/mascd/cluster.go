package main

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/masc-project/masc/internal/cluster"
	"github.com/masc-project/masc/internal/policy/compile"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/store"
	"github.com/masc-project/masc/internal/workflow"
)

// clusterSettings are the parsed -node-id / -advertise /
// -cluster-seed / -replication-level / -cluster-secret flags.
type clusterSettings struct {
	nodeID           string
	advertise        string
	seeds            []cluster.NodeInfo
	replicationLevel int
	// secret, when non-empty, is the shared token every intra-cluster
	// request (heartbeats, WAL fetches) must carry; without it the
	// cluster endpoints trust the network (docs/cluster.md, "Trust
	// model").
	secret string
	// heartbeat overrides the failure-detector interval (tests use
	// aggressive values; zero keeps the 1s default).
	heartbeat time.Duration
}

func (c *clusterSettings) enabled() bool { return c.nodeID != "" }

// parseSeed parses one -cluster-seed value, "id=http://host:port".
func parseSeed(s string) (cluster.NodeInfo, error) {
	id, addr, ok := strings.Cut(s, "=")
	if !ok || id == "" || addr == "" {
		return cluster.NodeInfo{}, fmt.Errorf("-cluster-seed: want id=http://host:port, got %q", s)
	}
	return cluster.NodeInfo{ID: id, Addr: strings.TrimRight(addr, "/")}, nil
}

// clusterRuntime is the daemon's multi-node state: the cluster node
// (membership + ring + forwarding), the WAL replication feed (leader
// side), and the replica manager following the takeover predecessor.
type clusterRuntime struct {
	d        *daemon
	node     *cluster.Node
	feed     *store.Feed
	settings clusterSettings
	dataDir  string

	mu       sync.Mutex
	follower *store.Follower
	peer     string // ID of the member currently followed

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// setupCluster wires the cluster runtime into the daemon. Requires the
// store and policy repository to be open already.
func setupCluster(d *daemon, settings clusterSettings, dataDir string) (*clusterRuntime, error) {
	cr := &clusterRuntime{
		d:        d,
		settings: settings,
		dataDir:  dataDir,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if d.st != nil {
		cr.feed = store.NewFeed(d.st, d.tel.Registry())
	}
	node, err := cluster.NewNode(cluster.Config{
		NodeID:            settings.nodeID,
		Advertise:         settings.advertise,
		Seeds:             settings.seeds,
		HeartbeatInterval: settings.heartbeat,
		Secret:            settings.secret,
		Self:              cr.selfInfo,
		Telemetry:         d.tel,
		OnPromote:         cr.promote,
		ReplicationStatus: cr.replicationStatus,
	})
	if err != nil {
		return nil, err
	}
	cr.node = node

	// Stamp provenance: journal entries, decision records, and flight
	// recorder bundles carry the node that produced them.
	d.tel.Logs().SetNode(settings.nodeID)
	d.decisions.SetNode(settings.nodeID)

	// -replication-level N: instance completion waits until the
	// terminal checkpoint is acknowledged by N followers (bounded, so a
	// follower outage degrades to a logged warning, not a hang).
	if d.persist != nil && cr.feed != nil && settings.replicationLevel > 0 {
		level := settings.replicationLevel
		feed := cr.feed
		d.persist.SetReplicationBarrier(func() error {
			ctx, cancel := context.WithTimeout(context.Background(), replicationBarrierTimeout)
			defer cancel()
			return feed.WaitReplicated(ctx, level)
		})
	}
	return cr, nil
}

// replicationBarrierTimeout bounds how long an instance finish waits
// for follower acknowledgements at the configured replication level.
const replicationBarrierTimeout = 10 * time.Second

// start launches heartbeating and (with a store) the replica manager.
func (cr *clusterRuntime) start() {
	cr.node.Start()
	if cr.d.st != nil && cr.dataDir != "" {
		go cr.replicaLoop()
	} else {
		close(cr.done)
	}
}

func (cr *clusterRuntime) Stop() {
	cr.stopOnce.Do(func() { close(cr.stop) })
	<-cr.done
	cr.node.Stop()
	cr.mu.Lock()
	if cr.follower != nil {
		cr.follower.Stop()
		cr.follower = nil
	}
	cr.mu.Unlock()
}

// selfInfo advertises the policy revision and WAL write position in
// every heartbeat.
func (cr *clusterRuntime) selfInfo() cluster.NodeInfo {
	info := cluster.NodeInfo{}
	if cs := compile.Lookup(cr.d.repo); cs != nil {
		info.PolicyRevision = cs.Manifest.Revision
	}
	if cr.d.st != nil {
		info.WALSegment, info.WALOffset = cr.d.st.WALPosition()
	}
	return info
}

// replicaDir is where a peer's replicated WAL lands.
func (cr *clusterRuntime) replicaDir(peerID string) string {
	return filepath.Join(cr.dataDir, "replica", peerID)
}

// predecessor returns the live member this node must follow: the
// previous live node in sorted-ID order (the node whose takeover heir
// this node is). Empty when no live peer exists.
func (cr *clusterRuntime) predecessor() (cluster.Member, bool) {
	members := cr.node.Membership().Members()
	ids := []string{cr.node.ID()}
	byID := map[string]cluster.Member{}
	for _, m := range members {
		if m.State != cluster.StateDead {
			ids = append(ids, m.ID)
			byID[m.ID] = m
		}
	}
	if len(ids) < 2 {
		return cluster.Member{}, false
	}
	sort.Strings(ids)
	for i, id := range ids {
		if id == cr.node.ID() {
			pred := ids[(i+len(ids)-1)%len(ids)]
			m := byID[pred]
			return m, m.Addr != ""
		}
	}
	return cluster.Member{}, false
}

// replicaLoop keeps a follower attached to the current takeover
// predecessor, switching targets as membership changes.
func (cr *clusterRuntime) replicaLoop() {
	defer close(cr.done)
	log := cr.d.tel.Logger("cluster")
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		pred, ok := cr.predecessor()
		cr.mu.Lock()
		switch {
		case !ok && cr.follower != nil:
			cr.follower.Stop()
			cr.follower, cr.peer = nil, ""
		case ok && pred.ID != cr.peer:
			if cr.follower != nil {
				cr.follower.Stop()
				cr.follower = nil
			}
			var hdrs map[string]string
			if cr.settings.secret != "" {
				hdrs = map[string]string{cluster.SecretHeader: cr.settings.secret}
			}
			fol, err := store.StartFollower(cr.replicaDir(pred.ID),
				pred.Addr+apiPrefix+"/cluster/wal", store.FollowerOptions{
					NodeID:   cr.node.ID(),
					Headers:  hdrs,
					Registry: cr.d.tel.Registry(),
					Logger:   log,
				})
			if err != nil {
				log.Warn("replica follower failed to start",
					"peer", pred.ID, "error", err.Error())
			} else {
				cr.follower, cr.peer = fol, pred.ID
				log.Info("replicating predecessor WAL",
					"peer", pred.ID, "addr", pred.Addr)
			}
		}
		cr.mu.Unlock()
		select {
		case <-cr.stop:
			return
		case <-t.C:
		}
	}
}

// promote is the failover hook: this node's takeover rule elected it
// as the dead member's heir, so it recovers the dead node's process
// instances from the replicated WAL into the local engine. Recovered
// instances come back suspended and re-anchor into this node's own
// store on their next checkpoint.
func (cr *clusterRuntime) promote(dead cluster.Member) {
	log := cr.d.tel.Logger("cluster")
	cr.mu.Lock()
	if cr.peer == dead.ID && cr.follower != nil {
		cr.follower.Stop()
		cr.follower, cr.peer = nil, ""
	}
	cr.mu.Unlock()

	dir := cr.replicaDir(dead.ID)
	replica, err := store.Open(dir, store.Options{SnapshotEvery: -1})
	if err != nil {
		log.Error("promotion failed: cannot open replica",
			"dead", dead.ID, "dir", dir, "error", err.Error())
		return
	}
	defer replica.Close()
	// A throwaway persistence service bound to the replica reads the
	// dead node's checkpoints; the engine's own attached service (on
	// this node's store) takes over checkpointing from here.
	p := workflow.NewPersistenceServiceWith(replica, cr.d.tel, cr.d.ckptOpts)
	rep, err := p.Recover(cr.d.engine)
	p.Close()
	if err != nil {
		log.Error("promotion recovery failed", "dead", dead.ID, "error", err.Error())
		return
	}
	cr.d.mergeRecovery(rep)
	log.Warn("promoted: recovered dead member's instances",
		"dead", dead.ID,
		"recovered", fmt.Sprintf("%d", len(rep.Recovered)),
		"terminal", fmt.Sprintf("%d", rep.Terminal),
		"failed", fmt.Sprintf("%d", rep.Failed))
}

// replicationStatus is embedded in /api/v1/cluster.
func (cr *clusterRuntime) replicationStatus() interface{} {
	out := struct {
		Level    int                   `json:"level"`
		Feed     *store.FeedStatus     `json:"feed,omitempty"`
		Follower *store.FollowerStatus `json:"follower,omitempty"`
		Peer     string                `json:"peer,omitempty"`
	}{Level: cr.settings.replicationLevel}
	if cr.feed != nil {
		fs := cr.feed.Status()
		out.Feed = &fs
	}
	cr.mu.Lock()
	if cr.follower != nil {
		st := cr.follower.Status()
		out.Follower = &st
		out.Peer = cr.peer
	}
	cr.mu.Unlock()
	return out
}

// clusterKey extracts the sharding key from a gateway request: the
// X-Masc-Conversation header when the client supplies one, else the
// ConversationID (or process-instance correlation) inside the SOAP
// envelope.
func clusterKey(r *http.Request, body []byte) string {
	if v := r.Header.Get(cluster.ConversationHTTPHeader); v != "" {
		return v
	}
	if len(body) == 0 {
		return ""
	}
	env, err := soap.Decode(string(body))
	if err != nil {
		return ""
	}
	return soap.ConversationID(env)
}

// mountClusterRoutes adds the cluster endpoints to the API mux.
func (cr *clusterRuntime) mount(mux *http.ServeMux) {
	mux.Handle(apiPrefix+"/cluster", apiErrorEnvelope(cr.node.StatusHandler()))
	mux.Handle(apiPrefix+"/cluster/heartbeat",
		http.HandlerFunc(cr.node.Membership().HandleHeartbeat))
	if cr.feed != nil {
		mux.Handle(apiPrefix+"/cluster/wal",
			cr.requireClusterSecret(cr.feed.Handler()))
	}
}

// requireClusterSecret guards the WAL feed — it serves full
// conversation state, so it demands the same shared token as
// heartbeats (no-op when no -cluster-secret is configured).
func (cr *clusterRuntime) requireClusterSecret(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !cluster.CheckSecret(cr.settings.secret, r) {
			http.Error(w, "cluster secret missing or wrong", http.StatusForbidden)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// clusterHealth is the cluster section of /api/v1/healthz.
type clusterHealth struct {
	Node               string `json:"node"`
	MembersAlive       int    `json:"members_alive"`
	MembersSuspect     int    `json:"members_suspect"`
	MembersDead        int    `json:"members_dead"`
	PolicyRevisionSkew int    `json:"policy_revision_skew"`
	Takeovers          int    `json:"takeovers"`
}

func (d *daemon) clusterHealth() *clusterHealth {
	if d.cluster == nil {
		return nil
	}
	n := d.cluster.node
	h := &clusterHealth{
		Node:               n.ID(),
		MembersAlive:       1, // self
		PolicyRevisionSkew: n.Membership().RevisionSkew(),
		Takeovers:          len(n.Takeovers()),
	}
	for _, m := range n.Membership().Members() {
		switch m.State {
		case cluster.StateAlive:
			h.MembersAlive++
		case cluster.StateSuspect:
			h.MembersSuspect++
		default:
			h.MembersDead++
		}
	}
	return h
}

// mergeRecovery folds a promotion-time recovery report into the
// daemon's (healthz and instance listings read it concurrently).
func (d *daemon) mergeRecovery(rep workflow.RecoveryReport) {
	d.recMu.Lock()
	d.recovery.Recovered = append(d.recovery.Recovered, rep.Recovered...)
	sort.Strings(d.recovery.Recovered)
	d.recovery.Terminal += rep.Terminal
	d.recovery.Failed += rep.Failed
	d.recMu.Unlock()
}

// recoveredCount and isRecovered are the lock-guarded readers.
func (d *daemon) recoveredCount() int {
	d.recMu.Lock()
	defer d.recMu.Unlock()
	return len(d.recovery.Recovered)
}

func (d *daemon) isRecovered(id string) bool {
	d.recMu.Lock()
	defer d.recMu.Unlock()
	for _, r := range d.recovery.Recovered {
		if r == id {
			return true
		}
	}
	return false
}
