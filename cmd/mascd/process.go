package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/store"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
	"github.com/masc-project/masc/internal/xmltree"
)

// orderingProcessXML is the Fig. 4 SCM composition hosted by mascd:
// browse the catalog through the Retailer VEP, place a fixed demo
// order when stock exists, then fetch the tracking events. PrepareOrder
// builds the order from a literal so the process is runnable from a
// bare catalog request.
const orderingProcessXML = `
<process xmlns="urn:masc:workflow" name="OrderingProcess">
  <variables>
    <variable name="catalogReq"/>
    <variable name="catalog"/>
    <variable name="orderReq"/>
    <variable name="confirmation"/>
    <variable name="events"/>
  </variables>
  <sequence name="main">
    <invoke name="BrowseCatalog" endpoint="vep:Retailer" operation="getCatalog"
            input="catalogReq" output="catalog" timeout="10s"/>
    <if name="HasStock" test="count(//catalog/getCatalogResponse/Product) > 0">
      <then>
        <invoke name="PlaceOrder" endpoint="vep:Retailer" operation="submitOrder"
                input="orderReq" output="confirmation" timeout="10s"/>
        <invoke name="TrackOrder" endpoint="inproc://scm/logging" operation="getEvents"
                output="events" timeout="10s"/>
      </then>
      <else>
        <terminate name="NoStock"/>
      </else>
    </if>
  </sequence>
</process>`

// defaultProcessInputs seeds runnable inputs for the built-in process
// when an API caller supplies none.
func defaultProcessInputs() map[string]*xmltree.Element {
	return map[string]*xmltree.Element{
		"catalogReq": scm.NewGetCatalogRequest("tv", 0),
		"orderReq": scm.NewSubmitOrderRequest("cust-api", []scm.OrderItem{
			{SKU: "605002", Qty: 1},
		}, 0),
	}
}

// setupWorkflow builds the process layer: an engine invoking through
// the gateway, the OrderingProcess deployment, and — when a store is
// open — the durable persistence service plus boot-time recovery.
func (d *daemon) setupWorkflow() error {
	def, err := workflow.ParseDefinitionString(orderingProcessXML)
	if err != nil {
		return err
	}
	d.engine.Deploy(def)
	if d.st == nil {
		return nil
	}
	d.persist = workflow.NewPersistenceServiceWith(d.st, d.tel, d.ckptOpts)
	d.persist.Attach(d.engine)
	rep, err := d.persist.Recover(d.engine)
	if err != nil {
		return err
	}
	d.recMu.Lock()
	d.recovery = rep
	d.recMu.Unlock()
	return nil
}

// processHandler serves SOAP posts at /process/<definition> through a
// ProcessHost: the composition is the service implementation.
func processHandler(e *workflow.Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.Trim(r.URL.Path, "/")
		if _, err := e.Definition(name); err != nil {
			http.NotFound(w, r)
			return
		}
		host := &workflow.ProcessHost{
			Engine:     e,
			Definition: name,
			InputVar:   "catalogReq",
			Defaults:   defaultProcessInputs(),
			OutputVar:  "confirmation",
		}
		h := &transport.HTTPHandler{Service: host}
		h.ServeHTTP(w, r)
	})
}

// instanceSummary is one process instance in API listings.
type instanceSummary struct {
	ID              string `json:"id"`
	Definition      string `json:"definition"`
	State           string `json:"state"`
	AdaptationState string `json:"adaptation_state,omitempty"`
	Recovered       bool   `json:"recovered,omitempty"`
	Error           string `json:"error,omitempty"`
}

func (d *daemon) summarizeInstance(inst *workflow.Instance) instanceSummary {
	s := instanceSummary{
		ID:              inst.ID(),
		Definition:      inst.Definition(),
		State:           inst.State().String(),
		AdaptationState: inst.AdaptationState(),
	}
	s.Recovered = d.isRecovered(s.ID)
	if err := inst.Err(); err != nil {
		s.Error = err.Error()
	}
	return s
}

// instancesIndex serves /api/v1/instances:
//
//	GET   list every instance (live and recovered) with its state
//	POST  {"definition": "...", "inputs": {"var": "<xml/>"}} starts one
//	      (definition defaults to OrderingProcess, inputs to a demo
//	      order)
func (d *daemon) instancesIndex(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		out := []instanceSummary{}
		for _, id := range d.engine.Instances() {
			inst, err := d.engine.Instance(id)
			if err != nil {
				continue
			}
			out = append(out, d.summarizeInstance(inst))
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		writeJSON(w, http.StatusOK, struct {
			Instances []instanceSummary `json:"instances"`
		}{out})
	case http.MethodPost:
		var body struct {
			Definition string            `json:"definition"`
			Inputs     map[string]string `json:"inputs"`
		}
		// An empty body means "all defaults"; malformed JSON does not.
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
			writeAPIError(w, http.StatusBadRequest, "malformed JSON body: "+err.Error())
			return
		}
		if body.Definition == "" {
			body.Definition = "OrderingProcess"
		}
		inputs := defaultProcessInputs()
		for name, text := range body.Inputs {
			el, err := xmltree.ParseString(text)
			if err != nil {
				writeAPIError(w, http.StatusBadRequest,
					fmt.Sprintf("input %q is not well-formed XML: %v", name, err))
				return
			}
			inputs[name] = el
		}
		inst, err := d.engine.Start(body.Definition, inputs)
		if err != nil {
			writeAPIError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, d.summarizeInstance(inst))
	default:
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// instanceManage routes /api/v1/instances/{id}, the lifecycle verbs
// /api/v1/instances/{id}/suspend and /api/v1/instances/{id}/resume,
// /api/v1/instances/{id}/checkpoint, which decodes the instance's
// stored delta chain to instanceSnapshot XML for export and debugging,
// and /api/v1/instances/{id}/timeline, the merged adaptation timeline.
// Resume releases a suspended instance — including one rebuilt from
// the store at boot, which continues from its last durable checkpoint.
func (d *daemon) instanceManage(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, apiPrefix+"/instances/")
	id, verb, _ := strings.Cut(rest, "/")
	inst, err := d.engine.Instance(id)
	if err != nil {
		writeAPIError(w, http.StatusNotFound, err.Error())
		return
	}
	switch verb {
	case "":
		if r.Method != http.MethodGet {
			writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, d.summarizeInstance(inst))
	case "suspend":
		if r.Method != http.MethodPost {
			writeAPIError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		if err := inst.Suspend(); err != nil {
			writeAPIError(w, http.StatusConflict, err.Error())
			return
		}
		d.tel.Logger("api").Conversation(id).Info("instance suspended", "instance", id)
		writeJSON(w, http.StatusOK, d.summarizeInstance(inst))
	case "resume":
		if r.Method != http.MethodPost {
			writeAPIError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		if err := inst.Resume(); err != nil {
			writeAPIError(w, http.StatusConflict, err.Error())
			return
		}
		// Recovered instances have not started their run loop yet; a
		// second Run on a live instance is a harmless bad-state error.
		if err := inst.Run(); err != nil && !errors.Is(err, workflow.ErrBadState) {
			writeAPIError(w, http.StatusInternalServerError, err.Error())
			return
		}
		d.tel.Logger("api").Conversation(id).Info("instance resumed", "instance", id)
		writeJSON(w, http.StatusOK, d.summarizeInstance(inst))
	case "checkpoint":
		if r.Method != http.MethodGet {
			writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		if d.persist == nil {
			writeAPIError(w, http.StatusNotFound, "no durable store (-data-dir) is configured")
			return
		}
		text, err := d.persist.ExportXML(id)
		if err != nil {
			writeAPIError(w, http.StatusNotFound, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		fmt.Fprintln(w, text)
	case "timeline":
		if r.Method != http.MethodGet {
			writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, d.instanceTimeline(id))
	default:
		writeAPIError(w, http.StatusNotFound, "unknown resource "+r.URL.Path)
	}
}

// storeStatus is the durable-store section of /api/v1/healthz.
type storeStatus struct {
	Dir                string  `json:"dir"`
	SyncMode           string  `json:"sync_mode"`
	WALBytes           int64   `json:"wal_bytes"`
	Segments           int     `json:"segments"`
	Records            uint64  `json:"records"`
	Fsyncs             uint64  `json:"fsyncs"`
	Keys               int     `json:"keys"`
	SnapshotIndex      uint64  `json:"snapshot_index"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	RecoveredRecords   uint64  `json:"recovered_records"`
	TruncatedTail      bool    `json:"truncated_tail"`
	RecoveredInstances int     `json:"recovered_instances"`
}

func (d *daemon) storeStatus() *storeStatus {
	if d.st == nil {
		return nil
	}
	st := d.st.Stats()
	return &storeStatus{
		Dir:                st.Dir,
		SyncMode:           st.SyncMode,
		WALBytes:           st.WALBytes,
		Segments:           st.Segments,
		Records:            st.Records,
		Fsyncs:             st.Fsyncs,
		Keys:               st.Keys,
		SnapshotIndex:      st.SnapshotIndex,
		SnapshotAgeSeconds: st.SnapshotAge.Seconds(),
		RecoveredRecords:   st.RecoveredRecords,
		TruncatedTail:      st.TruncatedTail,
		RecoveredInstances: d.recoveredCount(),
	}
}

// openDataDir opens the durable store for -data-dir with the parsed
// -sync mode. Cluster mode disables snapshot compaction so followers
// can replicate the raw WAL segments.
func openDataDir(dir, syncMode string, d *daemon, clustered bool) (*store.Store, error) {
	mode, err := store.ParseSyncMode(syncMode)
	if err != nil {
		return nil, err
	}
	opts := store.Options{
		Sync:    mode,
		Metrics: d.tel.Registry(),
	}
	if clustered {
		opts.SnapshotEvery = -1
	}
	return store.Open(dir, opts)
}
