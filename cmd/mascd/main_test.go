package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/policy/compile"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
	"github.com/masc-project/masc/internal/wsdl"
)

func testGateway(t *testing.T) (*bus.Bus, *transport.Network) {
	d := testDaemon(t)
	return d.gateway, d.network
}

func testDaemon(t *testing.T) *daemon {
	t.Helper()
	network := transport.NewNetwork()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(0)
	// The compiler is the production default; testDaemon mirrors run().
	repo := policy.NewRepository()
	if err := compile.Enable(repo, compile.Options{Registry: tel.Registry(), Journal: tel.Logs()}); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadXML(defaultPolicies); err != nil {
		t.Fatal(err)
	}
	gateway := bus.New(network, bus.WithPolicyRepository(repo), bus.WithTelemetry(tel))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:     "Retailer",
		Services: deployment.RetailerAddrs,
		Contract: scm.RetailerContract(),
	}); err != nil {
		t.Fatal(err)
	}
	d := &daemon{
		gateway: gateway,
		network: network,
		repo:    repo,
		tel:     tel,
		start:   time.Now(),
		engine:  workflow.NewEngine(gateway, workflow.WithTelemetry(tel)),
	}
	if err := d.setupWorkflow(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDefaultPoliciesValid(t *testing.T) {
	doc, err := policy.ParseString(defaultPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if err := policy.Validate(doc); err != nil {
		t.Fatal(err)
	}
}

func TestVEPHandlerOverHTTP(t *testing.T) {
	gateway, _ := testGateway(t)
	srv := httptest.NewServer(vepHandler(gateway, nil))
	defer srv.Close()

	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("tv", 0))
	soap.Addressing{To: "vep:Retailer", Action: "getCatalog"}.Apply(req)
	resp, err := inv.Invoke(context.Background(), srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsFault() || len(resp.Payload.ChildrenNamed("", "Product")) == 0 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestVEPHandlerDefaultsToRetailer(t *testing.T) {
	gateway, _ := testGateway(t)
	srv := httptest.NewServer(vepHandler(gateway, nil))
	defer srv.Close()

	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("", 0)) // no To header
	resp, err := inv.Invoke(context.Background(), srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsFault() {
		t.Fatalf("fault: %v", resp.Fault)
	}
}

func TestDirectHandlerRoutesByPath(t *testing.T) {
	_, network := testGateway(t)
	srv := httptest.NewServer(directHandler(network))
	defer srv.Close()

	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("audio", 0))
	resp, err := inv.Invoke(context.Background(), srv.URL+"/svc/scm/retailer-b", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsFault() {
		t.Fatalf("fault: %v", resp.Fault)
	}
	if got := len(resp.Payload.ChildrenNamed("", "Product")); got != 3 {
		t.Fatalf("audio products = %d", got)
	}

	// Unknown path maps to a missing endpoint → fault response.
	resp, err = inv.Invoke(context.Background(), srv.URL+"/svc/nope", req)
	if err == nil && !resp.IsFault() {
		t.Fatal("unknown service path succeeded")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{"-listen"}); err == nil {
		t.Fatal("dangling -listen accepted")
	}
	if err := run([]string{"-policies"}); err == nil {
		t.Fatal("dangling -policies accepted")
	}
	if err := run([]string{"-policies", "/does/not/exist.xml"}); err == nil {
		t.Fatal("missing policy file accepted")
	}
}

func TestVEPHandlerPublishesWSDL(t *testing.T) {
	gateway, _ := testGateway(t)
	srv := httptest.NewServer(vepHandler(gateway, nil))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/Retailer?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	contract, err := wsdl.ParseContractString(string(body))
	if err != nil {
		t.Fatalf("published WSDL does not parse: %v\n%s", err, body)
	}
	if contract.Name != "Retailer" || contract.Operation("getCatalog") == nil {
		t.Fatalf("contract = %+v", contract)
	}

	// Unknown VEP → 404.
	resp2, err := srv.Client().Get(srv.URL + "/Ghost?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("ghost status = %d", resp2.StatusCode)
	}
}

func postCatalog(t *testing.T, srv *httptest.Server) *soap.Envelope {
	t.Helper()
	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("tv", 0))
	soap.Addressing{To: "vep:Retailer", Action: "getCatalog"}.Apply(req)
	resp, err := inv.Invoke(context.Background(), srv.URL+"/vep/Retailer", req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestMetricsEndpointAfterTraffic(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	if resp := postCatalog(t, srv); resp.IsFault() {
		t.Fatalf("fault: %v", resp.Fault)
	}

	hr, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	body, _ := io.ReadAll(hr.Body)
	if hr.StatusCode != 200 {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`masc_vep_invocations_total{vep="Retailer",operation="getCatalog",outcome="ok"} 1`,
		`masc_bus_invocations_total{route="vep"} 1`,
		`masc_vep_invocation_seconds_count{vep="Retailer"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestTracesEndpointShowsSpanTree(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()
	postCatalog(t, srv)

	hr, err := srv.Client().Get(srv.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var summaries []telemetry.TraceSummary
	if err := json.NewDecoder(hr.Body).Decode(&summaries); err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 1 {
		t.Fatalf("summaries = %+v", summaries)
	}

	hr2, err := srv.Client().Get(srv.URL + "/traces/" + summaries[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	var view telemetry.TraceView
	if err := json.NewDecoder(hr2.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Root.Name != "gateway vep:Retailer" {
		t.Fatalf("root = %q", view.Root.Name)
	}
	if len(view.Root.Children) != 1 || view.Root.Children[0].Name != "vep Retailer" {
		t.Fatalf("children = %+v", view.Root.Children)
	}
	vep := view.Root.Children[0]
	if len(vep.Children) == 0 || !strings.HasPrefix(vep.Children[0].Name, "attempt ") {
		t.Fatalf("attempt spans = %+v", vep.Children)
	}

	// Unknown trace → 404.
	hr3, err := srv.Client().Get(srv.URL + "/traces/trace-999999")
	if err != nil {
		t.Fatal(err)
	}
	hr3.Body.Close()
	if hr3.StatusCode != 404 {
		t.Fatalf("unknown trace status = %d", hr3.StatusCode)
	}
}

func TestHealthzJSON(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	hr, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	var h struct {
		Status             string   `json:"status"`
		UptimeSeconds      float64  `json:"uptime_seconds"`
		VEPs               []string `json:"veps"`
		PolicyDocuments    []string `json:"policy_documents"`
		AdaptationPolicies int      `json:"adaptation_policies"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.UptimeSeconds < 0 {
		t.Fatalf("health = %+v", h)
	}
	if len(h.VEPs) != 1 || h.VEPs[0] != "Retailer" {
		t.Fatalf("veps = %v", h.VEPs)
	}
	if h.AdaptationPolicies != 1 || len(h.PolicyDocuments) != 1 {
		t.Fatalf("policies = %+v", h)
	}
}

func TestHealthzReportsVersionAndLatency(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()
	postCatalog(t, srv)

	hr, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h struct {
		Version    string `json:"version"`
		VEPLatency []struct {
			VEP   string  `json:"vep"`
			Count uint64  `json:"count"`
			P50MS float64 `json:"p50_ms"`
			P95MS float64 `json:"p95_ms"`
			P99MS float64 `json:"p99_ms"`
		} `json:"vep_latency"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Version != "dev" { // unstamped test build
		t.Fatalf("version = %q", h.Version)
	}
	if len(h.VEPLatency) != 1 || h.VEPLatency[0].VEP != "Retailer" || h.VEPLatency[0].Count != 1 {
		t.Fatalf("vep_latency = %+v", h.VEPLatency)
	}
	l := h.VEPLatency[0]
	if l.P50MS <= 0 || l.P50MS > l.P95MS || l.P95MS > l.P99MS {
		t.Fatalf("quantiles not ordered: %+v", l)
	}
}

func TestVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("run -version: %v", err)
	}
}

func TestReadyzReflectsBackendQoS(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	// Before traffic: unmeasured backends are assumed healthy.
	hr, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("pre-traffic status = %d", hr.StatusCode)
	}

	postCatalog(t, srv)
	hr2, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	var r struct {
		Status string `json:"status"`
		VEPs   []struct {
			VEP      string `json:"vep"`
			Ready    bool   `json:"ready"`
			Backends []struct {
				Target      string `json:"target"`
				Measured    bool   `json:"measured"`
				Invocations int    `json:"invocations"`
			} `json:"backends"`
		} `json:"veps"`
	}
	if err := json.NewDecoder(hr2.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Status != "ready" || len(r.VEPs) != 1 || !r.VEPs[0].Ready {
		t.Fatalf("readiness = %+v", r)
	}
	measured := 0
	for _, b := range r.VEPs[0].Backends {
		if b.Measured {
			measured += b.Invocations
		}
	}
	if measured != 1 {
		t.Fatalf("measured invocations = %d, want 1", measured)
	}
}

func TestPprofGatedByDebugFlag(t *testing.T) {
	d := testDaemon(t)
	plain := httptest.NewServer(d.routes(false))
	defer plain.Close()
	hr, err := plain.Client().Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 404 {
		t.Fatalf("pprof without -debug: status = %d, want 404", hr.StatusCode)
	}

	dbg := httptest.NewServer(d.routes(true))
	defer dbg.Close()
	hr2, err := dbg.Client().Get(dbg.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	hr2.Body.Close()
	if hr2.StatusCode != 200 {
		t.Fatalf("pprof with -debug: status = %d, want 200", hr2.StatusCode)
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	d := testDaemon(t)
	release := make(chan struct{})
	entered := make(chan struct{})
	h := d.track(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		close(entered)
		<-release
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	go srv.Client().Get(srv.URL)
	<-entered

	// While the request is parked, a short drain times out.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := d.drain(ctx); err == nil {
		t.Fatal("drain succeeded with a request in flight")
	}

	close(release)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := d.drain(ctx2); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
}
