package main

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/wsdl"
)

func testGateway(t *testing.T) (*bus.Bus, *transport.Network) {
	t.Helper()
	network := transport.NewNetwork()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
	if err != nil {
		t.Fatal(err)
	}
	repo := policy.NewRepository()
	if _, err := repo.LoadXML(defaultPolicies); err != nil {
		t.Fatal(err)
	}
	gateway := bus.New(network, bus.WithPolicyRepository(repo))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:     "Retailer",
		Services: deployment.RetailerAddrs,
		Contract: scm.RetailerContract(),
	}); err != nil {
		t.Fatal(err)
	}
	return gateway, network
}

func TestDefaultPoliciesValid(t *testing.T) {
	doc, err := policy.ParseString(defaultPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if err := policy.Validate(doc); err != nil {
		t.Fatal(err)
	}
}

func TestVEPHandlerOverHTTP(t *testing.T) {
	gateway, _ := testGateway(t)
	srv := httptest.NewServer(vepHandler(gateway))
	defer srv.Close()

	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("tv", 0))
	soap.Addressing{To: "vep:Retailer", Action: "getCatalog"}.Apply(req)
	resp, err := inv.Invoke(context.Background(), srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsFault() || len(resp.Payload.ChildrenNamed("", "Product")) == 0 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestVEPHandlerDefaultsToRetailer(t *testing.T) {
	gateway, _ := testGateway(t)
	srv := httptest.NewServer(vepHandler(gateway))
	defer srv.Close()

	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("", 0)) // no To header
	resp, err := inv.Invoke(context.Background(), srv.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsFault() {
		t.Fatalf("fault: %v", resp.Fault)
	}
}

func TestDirectHandlerRoutesByPath(t *testing.T) {
	_, network := testGateway(t)
	srv := httptest.NewServer(directHandler(network))
	defer srv.Close()

	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("audio", 0))
	resp, err := inv.Invoke(context.Background(), srv.URL+"/svc/scm/retailer-b", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsFault() {
		t.Fatalf("fault: %v", resp.Fault)
	}
	if got := len(resp.Payload.ChildrenNamed("", "Product")); got != 3 {
		t.Fatalf("audio products = %d", got)
	}

	// Unknown path maps to a missing endpoint → fault response.
	resp, err = inv.Invoke(context.Background(), srv.URL+"/svc/nope", req)
	if err == nil && !resp.IsFault() {
		t.Fatal("unknown service path succeeded")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{"-listen"}); err == nil {
		t.Fatal("dangling -listen accepted")
	}
	if err := run([]string{"-policies"}); err == nil {
		t.Fatal("dangling -policies accepted")
	}
	if err := run([]string{"-policies", "/does/not/exist.xml"}); err == nil {
		t.Fatal("missing policy file accepted")
	}
}

func TestVEPHandlerPublishesWSDL(t *testing.T) {
	gateway, _ := testGateway(t)
	srv := httptest.NewServer(vepHandler(gateway))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/Retailer?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	contract, err := wsdl.ParseContractString(string(body))
	if err != nil {
		t.Fatalf("published WSDL does not parse: %v\n%s", err, body)
	}
	if contract.Name != "Retailer" || contract.Operation("getCatalog") == nil {
		t.Fatalf("contract = %+v", contract)
	}

	// Unknown VEP → 404.
	resp2, err := srv.Client().Get(srv.URL + "/Ghost?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("ghost status = %d", resp2.StatusCode)
	}
}
