package main

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/store"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
)

// timelineDaemon is the acceptance fixture for the timeline endpoint:
// a persistent daemon whose Retailer VEP lists a dead backend first,
// so every process invoke exercises retry + failover — an adapted
// instance with decisions, journal entries, trace spans, and
// checkpoints to merge.
func timelineDaemon(t *testing.T, dir string) *daemon {
	t.Helper()
	network := transport.NewNetwork()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
	if err != nil {
		t.Fatal(err)
	}
	repo := policy.NewRepository()
	if _, err := repo.LoadXML(e2ePolicies); err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(0)
	dec := decision.NewRecorder(0, tel.Registry())
	d := &daemon{
		network:   network,
		repo:      repo,
		tel:       tel,
		start:     time.Now(),
		decisions: dec,
	}
	st, err := store.Open(dir, store.Options{Sync: store.SyncAlways, Metrics: tel.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	d.st = st
	gateway := bus.New(network,
		bus.WithPolicyRepository(repo),
		bus.WithTelemetry(tel),
		bus.WithStore(st),
		bus.WithDecisions(dec))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:      "Retailer",
		Services:  append([]string{"inproc://scm/dead"}, deployment.RetailerAddrs...),
		Contract:  scm.RetailerContract(),
		Selection: policy.SelectFirst,
	}); err != nil {
		t.Fatal(err)
	}
	d.gateway = gateway
	d.engine = workflow.NewEngine(gateway, workflow.WithTelemetry(tel))
	if err := d.setupWorkflow(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestInstanceTimelineMergesSources is the PR's acceptance scenario:
// an OrderingProcess instance that needed messaging-layer recovery
// yields a /api/v1/instances/{id}/timeline response merging at least
// three source kinds in time order, with the adaptation decision and
// its checkpoints visible in one view.
func TestInstanceTimelineMergesSources(t *testing.T) {
	d := timelineDaemon(t, t.TempDir())
	defer d.st.Close()
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	inst, err := d.engine.Start("OrderingProcess", defaultProcessInputs())
	if err != nil {
		t.Fatal(err)
	}
	state, err := inst.Wait(30 * time.Second)
	if err != nil || state != workflow.StateCompleted {
		t.Fatalf("instance state = %v err = %v", state, err)
	}

	hr, err := srv.Client().Get(srv.URL + "/api/v1/instances/" + inst.ID() + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("GET timeline status = %d", hr.StatusCode)
	}
	var rep timelineReport
	if err := json.NewDecoder(hr.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Instance != inst.ID() || rep.Count != len(rep.Events) || rep.Count == 0 {
		t.Fatalf("timeline report = instance %q count %d events %d",
			rep.Instance, rep.Count, len(rep.Events))
	}
	if len(rep.Sources) < 3 {
		t.Fatalf("timeline sources = %v, want >= 3 kinds", rep.Sources)
	}

	// Events come back in time order.
	for i := 1; i < len(rep.Events); i++ {
		if rep.Events[i].Time.Before(rep.Events[i-1].Time) {
			t.Fatalf("timeline out of order at %d: %v after %v",
				i, rep.Events[i].Time, rep.Events[i-1].Time)
		}
	}

	// The merge contains the adaptation decision that explains the
	// recovery, a journal entry, and the instance's checkpoints.
	var sawAdapt, sawJournal, sawCheckpoint, sawFullAnchor bool
	for _, ev := range rep.Events {
		switch ev.Source {
		case sourceDecision:
			if ev.Decision == nil {
				t.Fatalf("decision event without detail: %+v", ev)
			}
			if ev.Decision.Policy == "retry-then-failover" &&
				ev.Decision.Verdict == decision.VerdictMatched {
				if ev.Decision.Instance != inst.ID() {
					t.Fatalf("adaptation decision instance = %q, want %q",
						ev.Decision.Instance, inst.ID())
				}
				sawAdapt = true
			}
		case sourceJournal:
			if ev.Journal == nil || ev.Journal.Conversation != inst.ID() {
				t.Fatalf("journal event = %+v", ev)
			}
			sawJournal = true
		case sourceCheckpoint:
			if ev.Checkpoint == nil || ev.Checkpoint.Instance != inst.ID() {
				t.Fatalf("checkpoint event = %+v", ev)
			}
			sawCheckpoint = true
			if ev.Checkpoint.Kind == "full" {
				sawFullAnchor = true
			}
		}
	}
	if !sawAdapt {
		t.Fatalf("no matched retry-then-failover decision in timeline\n%+v", rep.Events)
	}
	if !sawJournal || !sawCheckpoint || !sawFullAnchor {
		t.Fatalf("journal=%v checkpoint=%v fullAnchor=%v", sawJournal, sawCheckpoint, sawFullAnchor)
	}
}

// TestInstanceTimelineUnknownInstance asserts the timeline verb 404s
// for unknown IDs like the other instance resources.
func TestInstanceTimelineUnknownInstance(t *testing.T) {
	d := e2eDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	hr, err := srv.Client().Get(srv.URL + "/api/v1/instances/nope/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", hr.StatusCode)
	}
}
