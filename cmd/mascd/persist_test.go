package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/store"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
)

// persistentDaemon builds a daemon over a durable store in dir, as
// `mascd -data-dir dir -sync always` would.
func persistentDaemon(t *testing.T, dir string) *daemon {
	t.Helper()
	network := transport.NewNetwork()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
	if err != nil {
		t.Fatal(err)
	}
	repo := policy.NewRepository()
	if _, err := repo.LoadXML(defaultPolicies); err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(0)
	d := &daemon{
		network: network,
		repo:    repo,
		tel:     tel,
		start:   time.Now(),
	}
	st, err := store.Open(dir, store.Options{Sync: store.SyncAlways, Metrics: tel.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	d.st = st
	gateway := bus.New(network,
		bus.WithPolicyRepository(repo),
		bus.WithTelemetry(tel),
		bus.WithStore(st))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:     "Retailer",
		Services: deployment.RetailerAddrs,
		Contract: scm.RetailerContract(),
	}); err != nil {
		t.Fatal(err)
	}
	d.gateway = gateway
	d.engine = workflow.NewEngine(gateway, workflow.WithTelemetry(tel))
	if err := d.setupWorkflow(); err != nil {
		t.Fatal(err)
	}
	return d
}

func getInstances(t *testing.T, srv *httptest.Server) []instanceSummary {
	t.Helper()
	hr, err := srv.Client().Get(srv.URL + "/api/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("GET /api/v1/instances status = %d", hr.StatusCode)
	}
	var page struct {
		Instances []instanceSummary `json:"instances"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	return page.Instances
}

// TestDaemonCrashRecoveryEndToEnd is the PR's acceptance scenario at
// daemon level: an OrderingProcess instance suspended mid-run survives
// a simulated crash (store abandoned without flush) and — after the
// daemon is rebuilt over the same data dir — appears in
// /api/v1/instances as recovered, resumes via the API, and completes.
func TestDaemonCrashRecoveryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	d1 := persistentDaemon(t, dir)

	inst, err := d1.engine.CreateInstance("OrderingProcess", defaultProcessInputs())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	if !inst.AwaitState(workflow.StateSuspended, 2*time.Second) {
		t.Fatalf("instance did not park; state = %s", inst.State())
	}
	d1.st.Abandon() // crash: no clean close

	d2 := persistentDaemon(t, dir)
	defer d2.st.Close()
	srv := httptest.NewServer(d2.routes(false))
	defer srv.Close()

	list := getInstances(t, srv)
	if len(list) != 1 || list[0].ID != inst.ID() || !list[0].Recovered || list[0].State != "suspended" {
		t.Fatalf("instances after recovery = %+v", list)
	}
	if d2.storeStatus().RecoveredInstances != 1 {
		t.Fatalf("store status = %+v", d2.storeStatus())
	}

	hr, err := srv.Client().Post(srv.URL+"/api/v1/instances/"+inst.ID()+"/resume",
		"application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Fatalf("resume status = %d", hr.StatusCode)
	}

	rec, err := d2.engine.Instance(inst.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st, err := rec.Wait(5 * time.Second); err != nil || st != workflow.StateCompleted {
		t.Fatalf("recovered instance state = %s err = %v", st, err)
	}
	// The confirmation came from a real retailer through the VEP.
	if out, ok := rec.GetVar("confirmation"); !ok || out == nil {
		t.Fatal("recovered instance has no confirmation output")
	}
	// The completion checkpoint is durable (decode the delta chain).
	raw, ok := d2.st.Get(workflow.SpaceInstances, inst.ID())
	if !ok {
		t.Fatal("terminal checkpoint missing")
	}
	doc, err := workflow.DecodeCheckpoint(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.AttrValue("", "state"); got != "completed" {
		t.Fatalf("terminal checkpoint state = %q, want completed", got)
	}

	// The export endpoint decodes the same chain to XML.
	hr2, err := srv.Client().Get(srv.URL + "/api/v1/instances/" + inst.ID() + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hr2.Body)
	hr2.Body.Close()
	if hr2.StatusCode != 200 || !strings.Contains(string(body), "instanceSnapshot") {
		t.Fatalf("checkpoint export status = %d body = %q", hr2.StatusCode, body)
	}
}

// TestInstancesAPIStartAndList covers POST /api/v1/instances with the
// default demo inputs and the listing/detail endpoints.
func TestInstancesAPIStartAndList(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	hr, err := srv.Client().Post(srv.URL+"/api/v1/instances", "application/json",
		bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	var started instanceSummary
	err = json.NewDecoder(hr.Body).Decode(&started)
	hr.Body.Close()
	if err != nil || hr.StatusCode != 202 {
		t.Fatalf("status = %d err = %v", hr.StatusCode, err)
	}
	if started.Definition != "OrderingProcess" || started.ID == "" {
		t.Fatalf("started = %+v", started)
	}

	inst, err := d.engine.Instance(started.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := inst.Wait(5 * time.Second); err != nil || st != workflow.StateCompleted {
		t.Fatalf("state = %s err = %v", st, err)
	}

	list := getInstances(t, srv)
	if len(list) != 1 || list[0].State != "completed" {
		t.Fatalf("instances = %+v", list)
	}

	// Unknown definition → 404 envelope.
	hr2, err := srv.Client().Post(srv.URL+"/api/v1/instances", "application/json",
		bytes.NewReader([]byte(`{"definition":"Ghost"}`)))
	if err != nil {
		t.Fatal(err)
	}
	hr2.Body.Close()
	if hr2.StatusCode != 404 {
		t.Fatalf("ghost status = %d", hr2.StatusCode)
	}
}
