package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/cluster"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
)

const catalogSOAP = `<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body><getCatalog xmlns="urn:wsi:scm"><category>tv</category></getCatalog></e:Body></e:Envelope>`

// clusterTestNode is one mascd of a multi-node test cluster.
type clusterTestNode struct {
	id  string
	d   *daemon
	cr  *clusterRuntime
	srv *httptest.Server
	dir string
}

// bootCluster starts n full daemons (store + engine + cluster runtime)
// on loopback httptest servers, seeded with each other, heartbeating
// at the given interval. Returned nodes are sorted by ID, matching the
// takeover successor order.
func bootCluster(t *testing.T, n int, heartbeat time.Duration) []*clusterTestNode {
	t.Helper()
	nodes := make([]*clusterTestNode, n)
	handlers := make([]http.Handler, n)
	seeds := make([]cluster.NodeInfo, n)
	for i := 0; i < n; i++ {
		i := i
		nodes[i] = &clusterTestNode{
			id:  fmt.Sprintf("node-%d", i),
			dir: t.TempDir(),
		}
		// The advertise URL must exist before the daemon boots, so the
		// server routes through a late-bound handler.
		nodes[i].srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := handlers[i]
			if h == nil {
				http.Error(w, "booting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		seeds[i] = cluster.NodeInfo{ID: nodes[i].id, Addr: nodes[i].srv.URL}
	}
	for i, tn := range nodes {
		network := transport.NewNetwork()
		deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
		if err != nil {
			t.Fatal(err)
		}
		repo := policy.NewRepository()
		if _, err := repo.LoadXML(defaultPolicies); err != nil {
			t.Fatal(err)
		}
		tel := telemetry.New(0)
		d := &daemon{
			network:   network,
			repo:      repo,
			tel:       tel,
			start:     time.Now(),
			decisions: decision.NewRecorder(64, tel.Registry()),
		}
		st, err := openDataDir(tn.dir, "always", d, true)
		if err != nil {
			t.Fatal(err)
		}
		d.st = st
		gateway := bus.New(network,
			bus.WithPolicyRepository(repo),
			bus.WithTelemetry(tel),
			bus.WithStore(st))
		if _, err := gateway.CreateVEP(bus.VEPConfig{
			Name:     "Retailer",
			Services: deployment.RetailerAddrs,
			Contract: scm.RetailerContract(),
		}); err != nil {
			t.Fatal(err)
		}
		d.gateway = gateway
		d.engine = workflow.NewEngine(gateway, workflow.WithTelemetry(tel))
		if err := d.setupWorkflow(); err != nil {
			t.Fatal(err)
		}
		cr, err := setupCluster(d, clusterSettings{
			nodeID:           tn.id,
			advertise:        tn.srv.URL,
			seeds:            seeds,
			replicationLevel: 1,
			secret:           "soak-secret", // heartbeats and WAL fetches must authenticate
			heartbeat:        heartbeat,
		}, tn.dir)
		if err != nil {
			t.Fatal(err)
		}
		d.cluster = cr
		tn.d, tn.cr = d, cr
		cr.start()
		handlers[i] = d.routes(false)
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.cr.Stop()
			if tn.d.persist != nil {
				tn.d.persist.Close()
			}
			_ = tn.d.st.Close()
			tn.srv.Close()
		}
	})
	return nodes
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// allAlive reports whether every node sees every other node alive.
func allAlive(nodes []*clusterTestNode) bool {
	for _, tn := range nodes {
		alive := 0
		for _, m := range tn.cr.node.Membership().Members() {
			if m.State == cluster.StateAlive {
				alive++
			}
		}
		if alive != len(nodes)-1 {
			return false
		}
	}
	return true
}

func postVEP(t *testing.T, url, conversation string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/vep/Retailer", strings.NewReader(catalogSOAP))
	if err != nil {
		t.Fatal(err)
	}
	if conversation != "" {
		req.Header.Set(cluster.ConversationHTTPHeader, conversation)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// clusterStatusDoc decodes the fields of /api/v1/cluster the tests
// assert on.
type clusterStatusDoc struct {
	Self    struct{ ID string }
	Members []struct {
		ID    string
		State string
	}
	Ring struct {
		Members      []string `json:"members"`
		VirtualNodes int      `json:"virtual_nodes"`
	}
	Replication struct {
		Level int
		Feed  *struct {
			Followers map[string]struct {
				LagBytes int64 `json:"lag_bytes"`
			}
		}
	}
}

// TestClusterStatusAndForwarding boots two nodes and checks the
// management surface: /api/v1/cluster reports membership + replication,
// healthz grows a cluster section, and a gateway exchange keyed to the
// peer's shard still answers (forwarded to the owner).
func TestClusterStatusAndForwarding(t *testing.T) {
	nodes := bootCluster(t, 2, 25*time.Millisecond)
	waitUntil(t, 5*time.Second, "both nodes alive", func() bool { return allAlive(nodes) })

	// A key owned by node-1, posted to node-0, must be forwarded and
	// still answer with the catalog.
	var remoteKey string
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("conv-%d", i)
		if nodes[0].cr.node.Owner(k) == "node-1" {
			remoteKey = k
			break
		}
	}
	code, body := postVEP(t, nodes[0].srv.URL, remoteKey)
	if code != http.StatusOK || !strings.Contains(body, "getCatalogResponse") {
		t.Fatalf("forwarded exchange: status=%d body=%q", code, body)
	}
	if got := nodes[1].cr.node.Status(); got.Self.ID != "node-1" {
		t.Fatalf("status self = %+v", got.Self)
	}

	// /api/v1/cluster on node-0: one alive member, a replication block
	// with the local feed, and (eventually) a lag-free follower ack.
	var status clusterStatusDoc
	waitUntil(t, 10*time.Second, "node-1 follower acked on node-0", func() bool {
		resp, err := http.Get(nodes[0].srv.URL + "/api/v1/cluster")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		status = clusterStatusDoc{}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			return false
		}
		if status.Replication.Feed == nil {
			return false
		}
		f, ok := status.Replication.Feed.Followers["node-1"]
		return ok && f.LagBytes == 0
	})
	if status.Self.ID != "node-0" || len(status.Members) != 1 || status.Members[0].State != "alive" {
		t.Fatalf("cluster status = %+v", status)
	}
	if len(status.Ring.Members) != 2 || status.Ring.VirtualNodes != cluster.DefaultVirtualNodes {
		t.Fatalf("ring = %+v", status.Ring)
	}
	if status.Replication.Level != 1 {
		t.Fatalf("replication level = %d", status.Replication.Level)
	}

	// healthz cluster section.
	resp, err := http.Get(nodes[0].srv.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Cluster *clusterHealth `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Cluster == nil || health.Cluster.Node != "node-0" || health.Cluster.MembersAlive != 2 {
		t.Fatalf("healthz cluster = %+v", health.Cluster)
	}
}

// TestClusterFailoverSoak is the kill/failover soak: boot three nodes,
// drive gateway load, checkpoint instances on a victim, wait for
// replication, crash the victim, and assert its takeover heir promotes
// and recovers every non-terminal instance — zero conversations lost —
// while the survivors keep serving.
func TestClusterFailoverSoak(t *testing.T) {
	nodes := bootCluster(t, 3, 40*time.Millisecond)
	waitUntil(t, 10*time.Second, "all three nodes alive", func() bool { return allAlive(nodes) })

	// node-1 is the victim; its takeover successor (and WAL follower)
	// is node-2, the next ID in sorted order.
	victim, heir, other := nodes[1], nodes[2], nodes[0]
	waitUntil(t, 10*time.Second, "heir following victim WAL", func() bool {
		victim.cr.mu.Lock()
		peer := victim.cr.peer
		victim.cr.mu.Unlock()
		_ = peer // victim follows node-0; what matters is the heir:
		heir.cr.mu.Lock()
		defer heir.cr.mu.Unlock()
		return heir.cr.peer == victim.id
	})

	// Background load against the survivors for the whole soak; every
	// exchange must answer 200 (forward failures degrade to local
	// handling, never to an error).
	var loadErrs atomic.Int64
	stopLoad := make(chan struct{})
	var loadWG sync.WaitGroup
	for _, tn := range []*clusterTestNode{heir, other} {
		tn := tn
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				code, _ := postVEP(t, tn.srv.URL, fmt.Sprintf("soak-%s-%d", tn.id, i))
				if code != http.StatusOK {
					loadErrs.Add(1)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}

	// Checkpoint instances on the victim without running them: created,
	// non-terminal, durable — exactly what failover must not lose.
	const instances = 8
	created := map[string]bool{}
	for i := 0; i < instances; i++ {
		inst, err := victim.d.engine.CreateInstance("OrderingProcess", defaultProcessInputs())
		if err != nil {
			t.Fatal(err)
		}
		created[inst.ID()] = true
	}
	// The replication gate: every checkpoint on stable storage at one
	// follower before the crash.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := victim.cr.feed.WaitReplicated(ctx, 1); err != nil {
		t.Fatalf("WaitReplicated: %v", err)
	}

	// Crash: no clean shutdown — the store is abandoned mid-flight and
	// the listener vanishes.
	victim.cr.Stop()
	victim.d.st.Abandon()
	victim.srv.Close()

	// The heir (and only the heir) promotes and rebuilds the victim's
	// instances from the replicated WAL.
	waitUntil(t, 15*time.Second, "heir recovered victim instances", func() bool {
		return heir.d.recoveredCount() == instances
	})
	if n := other.d.recoveredCount(); n != 0 {
		t.Fatalf("non-heir recovered %d instances", n)
	}
	recovered := map[string]bool{}
	heir.d.recMu.Lock()
	for _, id := range heir.d.recovery.Recovered {
		recovered[id] = true
	}
	heir.d.recMu.Unlock()
	for id := range created {
		if !recovered[id] {
			t.Fatalf("conversation lost: instance %s not recovered (got %v)", id, keys(recovered))
		}
	}
	// The heir's engine actually holds them, suspended and resumable.
	for id := range created {
		inst, err := heir.d.engine.Instance(id)
		if err != nil {
			t.Fatalf("recovered instance %s not in heir engine: %v", id, err)
		}
		if inst.State() != workflow.StateSuspended {
			t.Fatalf("instance %s state = %s, want suspended", id, inst.State())
		}
	}
	// Ring reassignment: the survivors route the victim's shard to the
	// heir.
	if tk := heir.cr.node.Takeovers(); tk[victim.id] != heir.id {
		t.Fatalf("heir takeover table = %v", tk)
	}
	if tk := other.cr.node.Takeovers(); tk[victim.id] != heir.id {
		t.Fatalf("survivor takeover table = %v", tk)
	}
	// A key that hashed to the victim still answers on a survivor.
	var victimKey string
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("vkey-%d", i)
		if other.cr.node.Ring().Owner(k) == victim.id {
			victimKey = k
			break
		}
	}
	code, body := postVEP(t, other.srv.URL, victimKey)
	if code != http.StatusOK || !strings.Contains(body, "getCatalogResponse") {
		t.Fatalf("post-failover exchange: status=%d body=%q", code, body)
	}

	close(stopLoad)
	loadWG.Wait()
	if n := loadErrs.Load(); n != 0 {
		t.Fatalf("%d load exchanges failed on surviving nodes during failover", n)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
