package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/flightrec"
	"github.com/masc-project/masc/internal/telemetry/slo"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
)

// testObservabilityDaemon builds a daemon with the full self-
// observation stack wired — SLO engine, flight recorder, event bus —
// plus a "Flaky" VEP whose only backend does not exist, so every
// invocation is a classified fault.
func testObservabilityDaemon(t *testing.T) (*daemon, *flightrec.Recorder) {
	t.Helper()
	network := transport.NewNetwork()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
	if err != nil {
		t.Fatal(err)
	}
	repo := policy.NewRepository()
	if _, err := repo.LoadXML(defaultPolicies); err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(64)
	events := event.NewBus()
	gateway := bus.New(network,
		bus.WithPolicyRepository(repo),
		bus.WithTelemetry(tel),
		bus.WithEventBus(events))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:     "Retailer",
		Services: deployment.RetailerAddrs,
		Contract: scm.RetailerContract(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:     "Flaky",
		Services: []string{"svc/scm/missing"},
	}); err != nil {
		t.Fatal(err)
	}

	engine := slo.NewEngine(
		[]slo.Objective{{Subject: "vep:Flaky", Availability: 0.99, MinSamples: 3}},
		slo.Options{Registry: tel.Registry(), Journal: tel.Logs()})
	gateway.SetInvocationObserver(engine)

	rec, err := flightrec.New(flightrec.Options{
		Dir:         filepath.Join(t.TempDir(), "flightrec"),
		Telemetry:   tel,
		SettleDelay: 50 * time.Millisecond,
		MinInterval: time.Nanosecond,
		SLOState:    func() interface{} { return engine.Status() },
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(events)
	t.Cleanup(rec.Close)

	d := &daemon{
		gateway: gateway,
		network: network,
		repo:    repo,
		tel:     tel,
		start:   time.Now(),
		engine:  workflow.NewEngine(gateway, workflow.WithTelemetry(tel)),
		slo:     engine,
		flight:  rec,
	}
	if err := d.setupWorkflow(); err != nil {
		t.Fatal(err)
	}
	return d, rec
}

// failFlaky drives one doomed invocation through the gateway's HTTP
// front door, so the exchange is traced like production traffic.
func failFlaky(t *testing.T, srv *httptest.Server) {
	t.Helper()
	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("tv", 0))
	soap.Addressing{To: "vep:Flaky", Action: "getCatalog"}.Apply(req)
	resp, err := inv.Invoke(context.Background(), srv.URL+"/vep/Flaky", req)
	if err == nil && !resp.IsFault() {
		t.Fatal("invocation of the missing backend succeeded")
	}
}

func TestObservabilityEndToEnd(t *testing.T) {
	d, rec := testObservabilityDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	for i := 0; i < 6; i++ {
		failFlaky(t, srv)
	}
	if !rec.WaitIdle(10 * time.Second) {
		t.Fatal("flight recorder never went idle")
	}

	// The SLO report shows the burned budget.
	hr, err := srv.Client().Get(srv.URL + "/api/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	var report slo.Report
	if err := json.NewDecoder(hr.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if len(report.Subjects) != 1 || report.Subjects[0].Subject != "vep:Flaky" {
		t.Fatalf("slo subjects = %+v", report.Subjects)
	}
	if !report.Subjects[0].Burning {
		t.Fatalf("vep:Flaky not burning: %+v", report.Subjects[0])
	}
	var availBudget float64 = -1
	for _, s := range report.Subjects[0].SLIs {
		if s.SLI == slo.SLIAvailability {
			availBudget = s.BudgetRemaining
		}
	}
	if availBudget != 0 {
		t.Fatalf("availability budget remaining = %v, want 0 (fully burned)", availBudget)
	}

	// Readiness degrades with the SLO reason.
	hr2, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status     string   `json:"status"`
		Reasons    []string `json:"reasons"`
		SLOBurning []string `json:"slo_burning"`
	}
	if err := json.NewDecoder(hr2.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	hr2.Body.Close()
	if hr2.StatusCode != 503 || ready.Status != "degraded" {
		t.Fatalf("readyz = %d %+v", hr2.StatusCode, ready)
	}
	if len(ready.SLOBurning) != 1 || ready.SLOBurning[0] != "vep:Flaky" {
		t.Fatalf("slo_burning = %v", ready.SLOBurning)
	}
	if !strings.Contains(strings.Join(ready.Reasons, "\n"), "slo vep:Flaky") {
		t.Fatalf("reasons = %v, want an slo reason", ready.Reasons)
	}

	// The flight recorder captured fetchable bundles.
	hr3, err := srv.Client().Get(srv.URL + "/api/v1/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Bundles []flightrec.Summary `json:"bundles"`
	}
	if err := json.NewDecoder(hr3.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	hr3.Body.Close()
	if len(listing.Bundles) == 0 {
		t.Fatal("no flight-recorder bundles after classified faults")
	}

	hr4, err := srv.Client().Get(srv.URL + "/api/v1/flightrec/" + listing.Bundles[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var bundle flightrec.Bundle
	if err := json.NewDecoder(hr4.Body).Decode(&bundle); err != nil {
		t.Fatal(err)
	}
	hr4.Body.Close()
	if bundle.Trigger.Event != string(event.TypeFaultDetected) {
		t.Fatalf("bundle trigger = %+v", bundle.Trigger)
	}
	if len(bundle.Journal) == 0 {
		t.Fatal("bundle has no journal slice")
	}
	if bundle.TraceID == "" {
		t.Fatal("bundle has no correlated trace ID")
	}
	// The trace ID must actually occur in the bundle's own journal
	// slice — the views cross-reference each other.
	correlated := false
	for _, e := range bundle.Journal {
		if e.Trace == bundle.TraceID {
			correlated = true
		}
	}
	if !correlated {
		t.Fatalf("trace %s not present in the bundle journal", bundle.TraceID)
	}
	if bundle.SLO == nil {
		t.Fatal("bundle has no SLO state")
	}
	if bundle.Goroutines == "" {
		t.Fatal("bundle has no goroutine dump")
	}

	// Missing bundles 404 through the API envelope.
	hr5, err := srv.Client().Get(srv.URL + "/api/v1/flightrec/fr-999999-nope")
	if err != nil {
		t.Fatal(err)
	}
	hr5.Body.Close()
	if hr5.StatusCode != 404 {
		t.Fatalf("missing bundle status = %d", hr5.StatusCode)
	}
}

func TestReadyzDegradedWhenAllBreakersOpen(t *testing.T) {
	d := testDaemon(t)
	if _, err := d.gateway.CreateVEP(bus.VEPConfig{
		Name:     "Guarded",
		Services: []string{"svc/scm/missing"},
		Protection: &policy.ProtectionPolicy{
			Name: "guard",
			Breaker: &policy.BreakerSpec{
				FailureThreshold: 1,
				Cooldown:         time.Hour,
			},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Two faults trip the single backend's breaker open.
	for i := 0; i < 2; i++ {
		req := soap.NewRequest(scm.NewGetCatalogRequest("tv", 0))
		soap.Addressing{To: "vep:Guarded", Action: "getCatalog"}.Apply(req)
		_, _ = d.gateway.Invoke(context.Background(), "vep:Guarded", req)
	}

	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()
	hr, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var ready struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
		VEPs    []struct {
			VEP      string            `json:"vep"`
			Ready    bool              `json:"ready"`
			Breakers map[string]string `json:"breakers"`
		} `json:"veps"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != 503 || ready.Status != "degraded" {
		t.Fatalf("readyz = %d %+v", hr.StatusCode, ready)
	}
	joined := strings.Join(ready.Reasons, "\n")
	if !strings.Contains(joined, "vep Guarded: every backend's circuit breaker is open") {
		t.Fatalf("reasons = %v, want all-breakers-open for Guarded", ready.Reasons)
	}
	for _, v := range ready.VEPs {
		switch v.VEP {
		case "Guarded":
			if v.Ready {
				t.Fatal("Guarded reported ready with its breaker open")
			}
			if v.Breakers["svc/scm/missing"] != "open" {
				t.Fatalf("Guarded breakers = %v", v.Breakers)
			}
		case "Retailer":
			if !v.Ready {
				t.Fatal("Retailer degraded by Guarded's breaker")
			}
		}
	}
}

// TestObservabilityEndpointsNilSafe covers the testDaemon shape — no
// SLO engine, no flight recorder — which is also mascd without
// -data-dir.
func TestObservabilityEndpointsNilSafe(t *testing.T) {
	d := testDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()

	hr, err := srv.Client().Get(srv.URL + "/api/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	var report slo.Report
	if err := json.NewDecoder(hr.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 200 || len(report.Subjects) != 0 {
		t.Fatalf("nil-engine slo = %d %+v", hr.StatusCode, report)
	}

	hr2, err := srv.Client().Get(srv.URL + "/api/v1/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Bundles []flightrec.Summary `json:"bundles"`
	}
	if err := json.NewDecoder(hr2.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	hr2.Body.Close()
	if hr2.StatusCode != 200 || len(listing.Bundles) != 0 {
		t.Fatalf("nil-recorder flightrec = %d %+v", hr2.StatusCode, listing)
	}

	hr3, err := srv.Client().Get(srv.URL + "/api/v1/flightrec/fr-000001-x")
	if err != nil {
		t.Fatal(err)
	}
	hr3.Body.Close()
	if hr3.StatusCode != 404 {
		t.Fatalf("nil-recorder bundle fetch = %d, want 404", hr3.StatusCode)
	}

	// readyz stays 200 with no SLO engine and healthy backends.
	hr4, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	hr4.Body.Close()
	if hr4.StatusCode != 200 {
		t.Fatalf("readyz without slo engine = %d", hr4.StatusCode)
	}
}

// TestExpositionLintFullStack registers the whole daemon's metric
// surface (bus, store via testDaemon's engine, SLO, runtime collector)
// and asserts every family carries help text.
func TestExpositionLintFullStack(t *testing.T) {
	d, _ := testObservabilityDaemon(t)
	telemetry.NewRuntimeCollector(d.tel.Registry())
	srv := httptest.NewServer(d.routes(false))
	defer srv.Close()
	failFlaky(t, srv) // populate lazily-registered series
	if missing := d.tel.Registry().LintExposition(); len(missing) != 0 {
		t.Fatalf("metric families without help text: %v", missing)
	}
}
