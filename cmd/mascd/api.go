package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy/compile"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
	"github.com/masc-project/masc/internal/telemetry/flightrec"
)

// apiPrefix is the versioned management API root. The unversioned
// observability paths (/metrics, /traces, ...) remain mounted as
// deprecated aliases of these endpoints.
const apiPrefix = "/api/v1"

// apiRoutes mounts the versioned API: the observability endpoints plus
// the VEP management resources, every error shaped as the uniform
// envelope {"error": {"code": ..., "message": ...}}.
func (d *daemon) apiRoutes(mux *http.ServeMux) {
	handle := func(path string, h http.Handler) {
		mux.Handle(apiPrefix+path, apiErrorEnvelope(h))
	}
	handle("/metrics", telemetry.MetricsHandler(d.tel.Registry()))
	traces := http.StripPrefix(apiPrefix, telemetry.TracesHandler(d.tel.Traces(), d.tel.Logs()))
	handle("/traces", traces)
	handle("/traces/", traces)
	handle("/logs", telemetry.JournalHandler(d.tel.Logs(), telemetry.KindLog, telemetry.KindAudit))
	handle("/messages", telemetry.JournalHandler(d.tel.Logs(), telemetry.KindMessage))
	handle("/healthz", http.HandlerFunc(d.healthz))
	// readyz is mounted without the error envelope: its 503 carries a
	// structured readiness report ({status, reasons, veps}), not an
	// error, and probes parse that body.
	mux.Handle(apiPrefix+"/readyz", http.HandlerFunc(d.readyz))
	handle("/veps", http.HandlerFunc(d.vepsIndex))
	handle("/veps/", http.HandlerFunc(d.vepManage))
	handle("/policies", http.HandlerFunc(d.policiesIndex))
	handle("/policies/", http.HandlerFunc(d.policyManage))
	handle("/instances", http.HandlerFunc(d.instancesIndex))
	handle("/instances/", http.HandlerFunc(d.instanceManage))
	handle("/slo", http.HandlerFunc(d.sloReport))
	handle("/flightrec", http.HandlerFunc(d.flightrecIndex))
	handle("/flightrec/", http.HandlerFunc(d.flightrecGet))
	handle("/decisions", decision.Handler(d.decisions))
}

// sloReport serves GET /api/v1/slo: derived objectives, per-window
// burn rates, and remaining error budget for every tracked VEP.
func (d *daemon) sloReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, d.slo.Status())
}

// flightrecIndex serves GET /api/v1/flightrec: stored fault bundles,
// newest first (empty when no flight recorder is attached, i.e. the
// daemon runs without -data-dir).
func (d *daemon) flightrecIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	summaries := d.flight.List()
	if summaries == nil {
		summaries = []flightrec.Summary{}
	}
	writeJSON(w, http.StatusOK, struct {
		Bundles []flightrec.Summary `json:"bundles"`
	}{summaries})
}

// flightrecGet serves GET /api/v1/flightrec/{id}: one full bundle.
func (d *daemon) flightrecGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, apiPrefix+"/flightrec/")
	if id == "" {
		d.flightrecIndex(w, r)
		return
	}
	bundle, ok := d.flight.Get(id)
	if !ok {
		writeAPIError(w, http.StatusNotFound, "no such bundle: "+id)
		return
	}
	writeJSON(w, http.StatusOK, bundle)
}

// writeAPIError emits the uniform error envelope.
func writeAPIError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorEnvelope{Error: errorBody{Code: errorCode(status), Message: msg}})
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Diagnostics carries the compiler front-end's structured findings
	// when a policy document is rejected (422).
	Diagnostics []compile.Diagnostic `json:"diagnostics,omitempty"`
}

// errorCode maps an HTTP status to the envelope's stable code slug.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return fmt.Sprintf("http_%d", status)
	}
}

// apiErrorEnvelope normalizes every error response (status >= 400)
// from the wrapped handler into the /api/v1 JSON envelope. Handlers
// that already emit the envelope pass through unchanged; plain-text
// and legacy JSON errors are rewrapped.
func apiErrorEnvelope(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ew := &envelopeWriter{rw: w}
		h.ServeHTTP(ew, r)
		ew.finish()
	})
}

// envelopeWriter passes success responses straight through and buffers
// error bodies so finish can rewrite them as the envelope.
type envelopeWriter struct {
	rw          http.ResponseWriter
	status      int
	wroteHeader bool
	buf         bytes.Buffer
}

func (e *envelopeWriter) Header() http.Header { return e.rw.Header() }

func (e *envelopeWriter) WriteHeader(code int) {
	if e.wroteHeader {
		return
	}
	e.wroteHeader = true
	e.status = code
	if code < 400 {
		e.rw.WriteHeader(code)
	}
}

func (e *envelopeWriter) Write(p []byte) (int, error) {
	if !e.wroteHeader {
		e.WriteHeader(http.StatusOK)
	}
	if e.status >= 400 {
		return e.buf.Write(p)
	}
	return e.rw.Write(p)
}

func (e *envelopeWriter) finish() {
	if !e.wroteHeader || e.status < 400 {
		return
	}
	body := strings.TrimSpace(e.buf.String())
	var probe errorEnvelope
	if json.Unmarshal([]byte(body), &probe) == nil && probe.Error.Code != "" {
		// Already the envelope: pass through verbatim.
		e.rw.Header().Set("Content-Type", "application/json; charset=utf-8")
		e.rw.WriteHeader(e.status)
		_, _ = e.rw.Write(e.buf.Bytes())
		return
	}
	writeAPIError(e.rw, e.status, errorMessage(body, e.status))
}

// errorMessage extracts a human-readable message from an error body:
// legacy JSON errors ({"error": "..."}), or the plain text itself.
func errorMessage(body string, status int) string {
	var legacy struct {
		Error any `json:"error"`
	}
	if json.Unmarshal([]byte(body), &legacy) == nil {
		switch v := legacy.Error.(type) {
		case string:
			return v
		case map[string]any:
			if m, ok := v["message"].(string); ok {
				return m
			}
		}
	}
	if body == "" {
		return http.StatusText(status)
	}
	return body
}

// protectionStatus summarizes a VEP's overload protection in listings.
type protectionStatus struct {
	Policy    string `json:"policy"`
	Admission bool   `json:"admission"`
	InFlight  int    `json:"in_flight"`
	Queued    int    `json:"queued"`
	Breaker   bool   `json:"breaker"`
	Hedge     bool   `json:"hedge"`
}

// vepSummary is one VEP in the management listing.
type vepSummary struct {
	Name       string            `json:"name"`
	Address    string            `json:"address"`
	Services   []string          `json:"services"`
	Protection *protectionStatus `json:"protection,omitempty"`
	Breakers   map[string]string `json:"breakers,omitempty"`
}

func summarizeVEP(v *bus.VEP) vepSummary {
	s := vepSummary{
		Name:     v.Name(),
		Address:  v.Address(),
		Services: v.Services(),
		Breakers: v.BreakerStates(),
	}
	if pp := v.Protection(); pp != nil {
		ps := &protectionStatus{
			Policy:    pp.Name,
			Admission: pp.Admission != nil,
			Breaker:   pp.Breaker != nil,
			Hedge:     pp.Hedge != nil,
		}
		if inFlight, queued, ok := v.AdmissionDepths(); ok {
			ps.InFlight, ps.Queued = inFlight, queued
		}
		s.Protection = ps
	}
	return s
}

// vepsIndex serves GET /api/v1/veps: every VEP with its registered
// services, protection status, and per-backend breaker states.
func (d *daemon) vepsIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	out := []vepSummary{}
	for _, name := range d.gateway.VEPs() {
		v, err := d.gateway.VEP(name)
		if err != nil {
			continue
		}
		out = append(out, summarizeVEP(v))
	}
	writeJSON(w, http.StatusOK, struct {
		VEPs []vepSummary `json:"veps"`
	}{out})
}

// vepManage routes /api/v1/veps/{name} and
// /api/v1/veps/{name}/services.
func (d *daemon) vepManage(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, apiPrefix+"/veps/")
	name, sub, _ := strings.Cut(rest, "/")
	v, err := d.gateway.VEP(name)
	if err != nil {
		writeAPIError(w, http.StatusNotFound, err.Error())
		return
	}
	switch {
	case sub == "":
		if r.Method != http.MethodGet {
			writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, summarizeVEP(v))
	case sub == "services":
		d.manageServices(w, r, v)
	default:
		writeAPIError(w, http.StatusNotFound, "unknown resource "+r.URL.Path)
	}
}

// manageServices implements runtime (de)registration of equivalent
// services — the dynamic reconfiguration counterpart of
// VEP.RegisterService/DeregisterService:
//
//	GET    /api/v1/veps/{name}/services            list
//	POST   /api/v1/veps/{name}/services            {"address": "..."}
//	DELETE /api/v1/veps/{name}/services?address=…  remove
//
// Addresses travel in a JSON body (POST) or query parameter (DELETE)
// because they contain slashes.
func (d *daemon) manageServices(w http.ResponseWriter, r *http.Request, v *bus.VEP) {
	respond := func() {
		writeJSON(w, http.StatusOK, struct {
			VEP      string   `json:"vep"`
			Services []string `json:"services"`
		}{v.Name(), v.Services()})
	}
	switch r.Method {
	case http.MethodGet:
		respond()
	case http.MethodPost:
		var body struct {
			Address string `json:"address"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || strings.TrimSpace(body.Address) == "" {
			writeAPIError(w, http.StatusBadRequest, `body must be {"address": "<endpoint>"}`)
			return
		}
		v.RegisterService(body.Address)
		d.tel.Logger("api").Info("service registered",
			"vep", v.Name(), "address", body.Address)
		respond()
	case http.MethodDelete:
		addr := r.URL.Query().Get("address")
		if addr == "" {
			writeAPIError(w, http.StatusBadRequest, "address query parameter required")
			return
		}
		if !v.DeregisterService(addr) {
			writeAPIError(w, http.StatusNotFound,
				fmt.Sprintf("%s is not registered with VEP %s", addr, v.Name()))
			return
		}
		d.tel.Logger("api").Info("service deregistered",
			"vep", v.Name(), "address", addr)
		respond()
	default:
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET, POST, or DELETE")
	}
}
