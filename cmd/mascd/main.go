// Command mascd runs the MASC middleware as a real HTTP deployment:
// the SCM services are hosted on local HTTP ports, a wsBus gateway
// endpoint mediates them through a Retailer VEP with the Table 1
// recovery policies, and (optionally) a policy document supplied with
// -policies — or a whole bundle directory of *.xml documents supplied
// with -policy-dir — replaces the built-in one. Policies are compiled
// to an immutable decision IR and swapped atomically on every change;
// -policy-interp keeps the tree interpreter instead (the
// differential-testing escape hatch). Send SOAP POSTs at the gateway:
//
//	mascd -listen :8080
//	curl -s -X POST --data '<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body><getCatalog xmlns="urn:wsi:scm"><category>tv</category></getCatalog></e:Body></e:Envelope>' http://localhost:8080/vep/Retailer
//
// Management API under /api/v1 (see docs/observability.md); every
// error response uses the envelope {"error":{"code","message"}}:
//
//	/api/v1/metrics        Prometheus text exposition of all metrics
//	/api/v1/traces         JSON list of recent gateway traces
//	/api/v1/traces/{id}    one trace as a correlated span tree
//	/api/v1/logs           structured log + audit entries
//	                       (?conversation=, ?level=, ?component=,
//	                       ?since=, ?trace=, ?kind=, ?limit=)
//	/api/v1/messages       the gateway message journal, same filters
//	/api/v1/healthz        JSON liveness (version, uptime, VEP and
//	                       policy counts, per-VEP latency quantiles)
//	/api/v1/readyz         per-backend VEP health from the QoS tracker
//	                       (503 with JSON reasons when a VEP has no
//	                       healthy backend, every backend of a VEP has
//	                       an open circuit breaker, or an SLO is
//	                       burning its error budget)
//	/api/v1/slo            SLO report: objectives derived from the
//	                       monitoring policies, rolling error budgets,
//	                       and 5m/1h burn rates per VEP
//	/api/v1/flightrec      flight-recorder bundles captured on
//	                       classified faults / SLA violations (requires
//	                       -data-dir); /api/v1/flightrec/{id} fetches
//	                       one correlated bundle
//	/api/v1/decisions      decision provenance: one structured record
//	                       per policy evaluation, with inputs,
//	                       assertions, verdicts, and latency
//	                       (?policy=, ?subject=, ?conversation=,
//	                       ?instance=, ?trace=, ?site=, ?verdict=,
//	                       ?since=, ?limit=)
//	/api/v1/policies       policy management: GET lists the published
//	                       bundle (revision, per-document SHA-256,
//	                       compile diagnostics)
//	/api/v1/policies/{name}  GET one document (raw WS-Policy4MASC XML
//	                       with Accept: application/xml or ?format=xml,
//	                       JSON metadata otherwise), PUT validates +
//	                       compiles + atomically publishes a replacement
//	                       (422 with structured diagnostics on failure;
//	                       the previous set keeps serving), DELETE
//	                       unloads it
//	/api/v1/policies/reload  POST re-reads -policy-dir as one
//	                       all-or-nothing transaction
//	/api/v1/veps           VEP listing with services, protection
//	                       status, and circuit-breaker states
//	/api/v1/veps/{name}/services  runtime service (de)registration
//	                       (POST {"address": ...} / DELETE ?address=)
//	/api/v1/instances      process instances: GET lists them, POST
//	                       starts one ({"definition","inputs"} both
//	                       optional)
//	/api/v1/instances/{id}         one instance's state
//	/api/v1/instances/{id}/suspend park at the next activity boundary
//	/api/v1/instances/{id}/resume  release (incl. boot-recovered
//	                       instances, which continue from their last
//	                       durable checkpoint)
//	/api/v1/instances/{id}/checkpoint  the instance's durable
//	                       checkpoint decoded to instanceSnapshot XML
//	                       (requires -data-dir)
//	/api/v1/instances/{id}/timeline  the instance's adaptation
//	                       timeline: decision records, journal entries,
//	                       trace spans, and checkpoint events merged in
//	                       time order
//	/debug/pprof           only with -debug
//
// The OrderingProcess composition is deployed and hosted at
// /process/OrderingProcess. With -data-dir <dir> the daemon opens a
// WAL+snapshot store there (-sync always|batched|off picks the fsync
// policy): instance checkpoints, pending retry-queue entries, and the
// DLQ become durable, and on startup interrupted instances are rebuilt
// in suspended state, listed under /api/v1/instances, and resumable
// via POST .../resume. Store health appears in /api/v1/healthz and as
// masc_store_* metrics.
//
// Checkpoints are written as delta chains (docs/persistence.md):
// -ckpt-anchor-every <n> caps a chain at n records before a fresh full
// snapshot, -ckpt-queue <n> bounds the async checkpoint queue (the
// backpressure point for batched/off sync modes), and
// -ckpt-durable-finish makes instance completion wait for the terminal
// checkpoint's fsync, not just its enqueue.
//
// Every policy evaluation leaves a decision record in a bounded
// in-memory ring (-decision-ring caps it, default 4096). With
// -data-dir the records also stream to size-capped NDJSON segments
// under <data-dir>/decisions; -decision-log-segment caps one segment's
// bytes and -decision-log-keep bounds how many segments are retained.
//
// The unversioned paths (/metrics, /traces, /logs, /messages,
// /healthz, /readyz) remain as deprecated aliases.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/policy/compile"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/store"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
	"github.com/masc-project/masc/internal/telemetry/flightrec"
	"github.com/masc-project/masc/internal/telemetry/slo"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/version"
	"github.com/masc-project/masc/internal/workflow"
)

const defaultPolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="gateway-recovery">
  <AdaptationPolicy name="retry-then-failover" subject="vep:Retailer" priority="10" kind="correction">
    <OnEvent type="fault.detected"/>
    <Actions>
      <Retry maxAttempts="3" delay="2s"/>
      <Substitute selection="bestResponseTime"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mascd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	listen := ":8080"
	policyPath := ""
	policyDir := ""
	policyInterp := false
	dataDir := ""
	syncMode := "batched"
	ckptOpts := workflow.PersistenceOptions{}
	exportURL := ""
	exportInterval := 15 * time.Second
	decisionRing := 0
	decisionLogOpts := decision.LogOptions{}
	clusterCfg := clusterSettings{}
	debug := false
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-listen":
			i++
			if i >= len(args) {
				return fmt.Errorf("-listen needs an address")
			}
			listen = args[i]
		case "-policies":
			i++
			if i >= len(args) {
				return fmt.Errorf("-policies needs a file")
			}
			policyPath = args[i]
		case "-policy-dir":
			i++
			if i >= len(args) {
				return fmt.Errorf("-policy-dir needs a directory")
			}
			policyDir = args[i]
		case "-policy-interp":
			policyInterp = true
		case "-data-dir":
			i++
			if i >= len(args) {
				return fmt.Errorf("-data-dir needs a directory")
			}
			dataDir = args[i]
		case "-sync":
			i++
			if i >= len(args) {
				return fmt.Errorf("-sync needs a mode (always, batched, off)")
			}
			syncMode = args[i]
		case "-ckpt-anchor-every":
			i++
			if i >= len(args) {
				return fmt.Errorf("-ckpt-anchor-every needs a record count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				return fmt.Errorf("-ckpt-anchor-every: want a positive integer, got %q", args[i])
			}
			ckptOpts.AnchorEvery = n
		case "-ckpt-queue":
			i++
			if i >= len(args) {
				return fmt.Errorf("-ckpt-queue needs a queue depth")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				return fmt.Errorf("-ckpt-queue: want a positive integer, got %q", args[i])
			}
			ckptOpts.QueueDepth = n
		case "-ckpt-durable-finish":
			ckptOpts.DurableFinish = true
		case "-decision-ring":
			i++
			if i >= len(args) {
				return fmt.Errorf("-decision-ring needs a record count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				return fmt.Errorf("-decision-ring: want a positive integer, got %q", args[i])
			}
			decisionRing = n
		case "-decision-log-segment":
			i++
			if i >= len(args) {
				return fmt.Errorf("-decision-log-segment needs a byte count")
			}
			n, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil || n < 1 {
				return fmt.Errorf("-decision-log-segment: want a positive byte count, got %q", args[i])
			}
			decisionLogOpts.SegmentBytes = n
		case "-decision-log-keep":
			i++
			if i >= len(args) {
				return fmt.Errorf("-decision-log-keep needs a segment count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 1 {
				return fmt.Errorf("-decision-log-keep: want a positive integer, got %q", args[i])
			}
			decisionLogOpts.MaxSegments = n
		case "-export-url":
			i++
			if i >= len(args) {
				return fmt.Errorf("-export-url needs a URL")
			}
			exportURL = args[i]
		case "-export-interval":
			i++
			if i >= len(args) {
				return fmt.Errorf("-export-interval needs a duration")
			}
			iv, err := time.ParseDuration(args[i])
			if err != nil {
				return fmt.Errorf("-export-interval: %w", err)
			}
			exportInterval = iv
		case "-node-id":
			i++
			if i >= len(args) {
				return fmt.Errorf("-node-id needs an identifier")
			}
			clusterCfg.nodeID = args[i]
		case "-advertise":
			i++
			if i >= len(args) {
				return fmt.Errorf("-advertise needs a base URL")
			}
			clusterCfg.advertise = strings.TrimRight(args[i], "/")
		case "-cluster-seed":
			i++
			if i >= len(args) {
				return fmt.Errorf("-cluster-seed needs id=http://host:port")
			}
			seed, err := parseSeed(args[i])
			if err != nil {
				return err
			}
			clusterCfg.seeds = append(clusterCfg.seeds, seed)
		case "-replication-level":
			i++
			if i >= len(args) {
				return fmt.Errorf("-replication-level needs a follower count")
			}
			n, err := strconv.Atoi(args[i])
			if err != nil || n < 0 {
				return fmt.Errorf("-replication-level: want a non-negative integer, got %q", args[i])
			}
			clusterCfg.replicationLevel = n
		case "-cluster-secret":
			i++
			if i >= len(args) {
				return fmt.Errorf("-cluster-secret needs a token")
			}
			clusterCfg.secret = args[i]
		case "-cluster-heartbeat":
			i++
			if i >= len(args) {
				return fmt.Errorf("-cluster-heartbeat needs a duration")
			}
			iv, err := time.ParseDuration(args[i])
			if err != nil {
				return fmt.Errorf("-cluster-heartbeat: %w", err)
			}
			clusterCfg.heartbeat = iv
		case "-debug":
			debug = true
		case "-version":
			fmt.Println("mascd", version.Version)
			return nil
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}

	// Backend SCM services on an in-process network but also exposed
	// over HTTP so external tools can hit them directly.
	network := transport.NewNetwork()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
	if err != nil {
		return err
	}

	if policyPath != "" && policyDir != "" {
		return fmt.Errorf("-policies and -policy-dir are mutually exclusive")
	}

	tel := telemetry.New(0)
	events := event.NewBus()

	// Policies compile to the decision IR by default; -policy-interp
	// keeps the tree interpreter (the differential-testing escape hatch).
	repo := policy.NewRepository()
	if !policyInterp {
		if err := compile.Enable(repo, compile.Options{
			Registry: tel.Registry(),
			Journal:  tel.Logs(),
		}); err != nil {
			return err
		}
	}
	if policyDir != "" {
		bundle, err := compile.LoadDir(policyDir)
		if err != nil {
			return err
		}
		if err := repo.ReplaceAll(bundle.Docs); err != nil {
			return err
		}
	} else {
		policyXML := defaultPolicies
		if policyPath != "" {
			raw, err := os.ReadFile(policyPath)
			if err != nil {
				return err
			}
			policyXML = string(raw)
		}
		if _, err := repo.LoadXML(policyXML); err != nil {
			return err
		}
	}

	// Decision provenance: every policy-evaluation site records into
	// this ring; with -data-dir the records additionally stream to a
	// durable NDJSON log under <data-dir>/decisions.
	dec := decision.NewRecorder(decisionRing, tel.Registry())

	d := &daemon{
		network:   network,
		repo:      repo,
		policyDir: policyDir,
		tel:       tel,
		start:     time.Now(),
		ckptOpts:  ckptOpts,
		decisions: dec,
	}
	if clusterCfg.enabled() && clusterCfg.advertise == "" {
		return fmt.Errorf("-node-id requires -advertise (peers must be able to reach this node)")
	}
	if dataDir != "" {
		// Cluster mode keeps every WAL segment (no snapshot compaction):
		// followers replicate the raw log, and a compacted segment would
		// break their cursors mid-stream.
		st, err := openDataDir(dataDir, syncMode, d, clusterCfg.enabled())
		if err != nil {
			return err
		}
		d.st = st
		defer d.st.Close()
	}

	busOpts := []bus.Option{
		bus.WithPolicyRepository(repo),
		bus.WithEventBus(events),
		bus.WithTelemetry(tel),
		bus.WithDecisions(dec),
	}
	if d.st != nil {
		busOpts = append(busOpts, bus.WithStore(d.st))
	}
	gateway := bus.New(network, busOpts...)
	d.gateway = gateway
	unTap := tel.Tracer.TapEventBus(events)
	defer unTap()
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:      "Retailer",
		Services:  deployment.RetailerAddrs,
		Contract:  scm.RetailerContract(),
		Selection: policy.SelectRoundRobin,
	}); err != nil {
		return err
	}

	// Self-observation plane: SLO targets derived from the monitoring
	// policies (falling back to 99% availability per VEP), runtime
	// metrics for allocation pressure, and — with -data-dir — the fault
	// flight recorder.
	telemetry.NewRuntimeCollector(tel.Registry())
	var subjects []string
	for _, name := range gateway.VEPs() {
		subjects = append(subjects, bus.SubjectPrefix+name)
	}
	d.slo = slo.NewEngine(
		slo.DeriveObjectives(repo, subjects, slo.Objective{Availability: 0.99}),
		slo.Options{Registry: tel.Registry(), Journal: tel.Logs(), Decisions: dec})
	gateway.SetInvocationObserver(d.slo)
	sloStop := make(chan struct{})
	defer close(sloStop)
	go func() {
		t := time.NewTicker(10 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-sloStop:
				return
			case <-t.C:
				d.slo.Tick()
			}
		}
	}()

	if dataDir != "" {
		rec, err := flightrec.New(flightrec.Options{
			Dir:       filepath.Join(dataDir, "flightrec"),
			Telemetry: tel,
			SLOState:  func() interface{} { return d.slo.Status() },
			Decisions: dec,
			Node:      clusterCfg.nodeID,
		})
		if err != nil {
			return err
		}
		rec.Attach(events)
		d.flight = rec
		defer rec.Close()

		decisionLogOpts.Metrics = tel.Registry()
		dlog, err := decision.OpenLog(filepath.Join(dataDir, "decisions"), decisionLogOpts)
		if err != nil {
			return err
		}
		dec.SetSink(dlog)
		defer dlog.Close()
	}

	if exportURL != "" {
		exp := telemetry.NewExporter(tel.Registry(), telemetry.ExporterOptions{
			URL:      exportURL,
			Interval: exportInterval,
			Node:     listen,
			Version:  version.Version,
			Extra: func() map[string]interface{} {
				return map[string]interface{}{"slo": d.slo.Status()}
			},
			Logger: tel.Logger("export"),
		})
		exp.Start()
		defer exp.Stop()
	}

	// Process layer: the OrderingProcess composition runs over the
	// gateway; with -data-dir its instances (and the retry queue / DLQ)
	// survive restarts, and interrupted instances are rebuilt here.
	d.engine = workflow.NewEngine(gateway,
		workflow.WithEventBus(events),
		workflow.WithTelemetry(tel))
	if err := d.setupWorkflow(); err != nil {
		return err
	}
	if d.persist != nil {
		// Drain the async checkpoint queue before the store closes
		// (deferred closes run last-in-first-out).
		defer d.persist.Close()
	}
	if clusterCfg.enabled() {
		cr, err := setupCluster(d, clusterCfg, dataDir)
		if err != nil {
			return err
		}
		d.cluster = cr
		cr.start()
		defer cr.Stop()
	}
	mux := d.routes(debug)

	// The startup entry lands in the journal (first /logs line) and on
	// stderr as a JSON log line.
	tel.Logger("mascd").Output(os.Stderr).Info("mascd starting",
		"version", version.Version, "listen", listen,
		"veps", strings.Join(gateway.VEPs(), ","))

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	fmt.Printf("mascd: SOAP gateway on %s (VEPs: %s; retailers: %s)\n",
		ln.Addr(), strings.Join(gateway.VEPs(), ", "), strings.Join(deployment.RetailerAddrs, ", "))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Shutdown stops the listener and waits for open connections;
		// draining additionally waits for gateway requests accepted
		// before the signal, so recoveries in progress can complete.
		shutdownErr := server.Shutdown(ctx)
		if err := d.drain(ctx); err != nil {
			return err
		}
		return shutdownErr
	}
}

// daemon holds the running gateway's shared state for HTTP handlers.
type daemon struct {
	gateway   *bus.Bus
	network   *transport.Network
	repo      *policy.Repository
	policyDir string
	tel       *telemetry.Telemetry
	start     time.Time
	engine    *workflow.Engine
	st        *store.Store
	persist   *workflow.PersistenceService
	ckptOpts  workflow.PersistenceOptions
	recovery  workflow.RecoveryReport
	slo       *slo.Engine
	flight    *flightrec.Recorder
	decisions *decision.Recorder
	cluster   *clusterRuntime

	// recMu guards recovery: promotion-time failover merges reports
	// into it while healthz and instance listings read it.
	recMu sync.Mutex

	inflight  sync.WaitGroup
	inflightN atomic.Int64
}

// routes assembles the daemon's HTTP mux. With debug, the pprof
// handlers are mounted under /debug/pprof/.
func (d *daemon) routes(debug bool) *http.ServeMux {
	mux := http.NewServeMux()
	// Gateway endpoints: /vep/<name> mediates through the named VEP.
	// In cluster mode the forwarding middleware wraps them outermost
	// (before StripPrefix, so a proxied request keeps its full URL):
	// exchanges whose conversation is owned by a peer are forwarded
	// there transparently.
	vep := http.Handler(http.StripPrefix("/vep/", d.track(vepHandler(d.gateway, d.tel))))
	// Hosted compositions: /process/<definition> starts one instance
	// per SOAP request and answers with its output.
	proc := http.Handler(http.StripPrefix("/process/", d.track(processHandler(d.engine))))
	if d.cluster != nil {
		vep = d.cluster.node.Forward(clusterKey, vep)
		proc = d.cluster.node.Forward(clusterKey, proc)
	}
	mux.Handle("/vep/", vep)
	mux.Handle("/process/", proc)
	// Direct endpoints: /svc/<address suffix>, e.g. /svc/scm/retailer-a.
	mux.Handle("/svc/", directHandler(d.network))
	mux.Handle("/metrics", telemetry.MetricsHandler(d.tel.Registry()))
	mux.Handle("/traces", telemetry.TracesHandler(d.tel.Traces(), d.tel.Logs()))
	mux.Handle("/traces/", telemetry.TracesHandler(d.tel.Traces(), d.tel.Logs()))
	mux.Handle("/logs", telemetry.JournalHandler(d.tel.Logs(), telemetry.KindLog, telemetry.KindAudit))
	mux.Handle("/messages", telemetry.JournalHandler(d.tel.Logs(), telemetry.KindMessage))
	mux.HandleFunc("/healthz", d.healthz)
	mux.HandleFunc("/readyz", d.readyz)
	d.apiRoutes(mux)
	if d.cluster != nil {
		d.cluster.mount(mux)
	}
	if debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// track counts in-flight gateway requests for graceful draining.
func (d *daemon) track(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d.inflight.Add(1)
		d.inflightN.Add(1)
		defer func() {
			d.inflightN.Add(-1)
			d.inflight.Done()
		}()
		h.ServeHTTP(w, r)
	})
}

// drain waits for in-flight gateway requests to finish or ctx to
// expire.
func (d *daemon) drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		d.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("shutdown: %d gateway request(s) still in flight", d.inflightN.Load())
	}
}

// vepLatency is one VEP's invocation-latency quantile estimates (in
// milliseconds), interpolated from the histogram buckets of
// masc_vep_invocation_seconds.
type vepLatency struct {
	VEP   string  `json:"vep"`
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// latencyQuantiles reads per-VEP p50/p95/p99 from the invocation
// histogram (nil when no VEP has been invoked yet).
func (d *daemon) latencyQuantiles() []vepLatency {
	hist := d.tel.Registry().Histogram("masc_vep_invocation_seconds", "", nil, "vep")
	var out []vepLatency
	for _, name := range d.gateway.VEPs() {
		h := hist.With(name)
		n := h.Count()
		if n == 0 {
			continue
		}
		out = append(out, vepLatency{
			VEP:   name,
			Count: n,
			P50MS: h.Quantile(0.50) * 1e3,
			P95MS: h.Quantile(0.95) * 1e3,
			P99MS: h.Quantile(0.99) * 1e3,
		})
	}
	return out
}

// healthz reports liveness as JSON: the process is up, for how long,
// what is deployed, and how fast the VEPs are serving.
func (d *daemon) healthz(w http.ResponseWriter, _ *http.Request) {
	mon, adapt := d.repo.Counts()
	policyRevision := ""
	if cs := compile.Lookup(d.repo); cs != nil {
		policyRevision = cs.Manifest.Revision
	}
	status := struct {
		Status             string         `json:"status"`
		Version            string         `json:"version"`
		UptimeSeconds      float64        `json:"uptime_seconds"`
		VEPs               []string       `json:"veps"`
		PolicyRevision     string         `json:"policy_revision,omitempty"`
		PolicyDocuments    []string       `json:"policy_documents"`
		MonitoringPolicies int            `json:"monitoring_policies"`
		AdaptationPolicies int            `json:"adaptation_policies"`
		ProtectionPolicies int            `json:"protection_policies"`
		InflightRequests   int64          `json:"inflight_requests"`
		Instances          int            `json:"instances"`
		Store              *storeStatus   `json:"store,omitempty"`
		Cluster            *clusterHealth `json:"cluster,omitempty"`
		VEPLatency         []vepLatency   `json:"vep_latency,omitempty"`
	}{
		Status:             "ok",
		Version:            version.Version,
		UptimeSeconds:      time.Since(d.start).Seconds(),
		VEPs:               d.gateway.VEPs(),
		PolicyRevision:     policyRevision,
		PolicyDocuments:    d.repo.Documents(),
		MonitoringPolicies: mon,
		AdaptationPolicies: adapt,
		ProtectionPolicies: d.repo.ProtectionCount(),
		InflightRequests:   d.inflightN.Load(),
		Instances:          len(d.engine.Instances()),
		Store:              d.storeStatus(),
		Cluster:            d.clusterHealth(),
		VEPLatency:         d.latencyQuantiles(),
	}
	writeJSON(w, http.StatusOK, status)
}

// backendHealth is one target's QoS summary in the readiness report.
type backendHealth struct {
	Target         string  `json:"target"`
	Measured       bool    `json:"measured"`
	Invocations    int     `json:"invocations"`
	Failures       int     `json:"failures"`
	Reliability    float64 `json:"reliability"`
	MeanResponseMS float64 `json:"mean_response_ms"`
}

// vepReadiness is one VEP's readiness: it is ready when at least one
// backend is healthy (unmeasured backends get the benefit of the
// doubt; measured ones must have succeeded at least once) and at
// least one backend's circuit breaker admits traffic.
type vepReadiness struct {
	VEP      string            `json:"vep"`
	Ready    bool              `json:"ready"`
	Backends []backendHealth   `json:"backends"`
	Breakers map[string]string `json:"breakers,omitempty"`
}

// readyz reports readiness from real per-backend QoS measurements,
// circuit-breaker state, and the SLO engine: 200 when every VEP has a
// healthy, admitting backend and no SLO is burning its error budget;
// 503 with the JSON reasons otherwise.
func (d *daemon) readyz(w http.ResponseWriter, _ *http.Request) {
	tracker := d.gateway.Tracker()
	var reasons []string
	var veps []vepReadiness
	for _, name := range d.gateway.VEPs() {
		vep, err := d.gateway.VEP(name)
		if err != nil {
			continue
		}
		vr := vepReadiness{VEP: name, Breakers: vep.BreakerStates()}
		healthy := false
		for _, addr := range vep.Services() {
			snap := tracker.Snapshot(addr)
			bh := backendHealth{
				Target:         addr,
				Measured:       snap.Known(),
				Invocations:    snap.Invocations,
				Failures:       snap.Failures,
				Reliability:    snap.Reliability,
				MeanResponseMS: float64(snap.MeanResponse) / float64(time.Millisecond),
			}
			vr.Backends = append(vr.Backends, bh)
			if !bh.Measured || bh.Reliability > 0 {
				healthy = true
			}
		}
		if !healthy {
			reasons = append(reasons, fmt.Sprintf("vep %s: no healthy backend", name))
		}
		// Every backend behind an open breaker means selection has
		// nothing to route to, regardless of measured QoS.
		admitting := len(vr.Breakers) == 0
		for _, state := range vr.Breakers {
			if state != "open" {
				admitting = true
				break
			}
		}
		if !admitting {
			reasons = append(reasons, fmt.Sprintf("vep %s: every backend's circuit breaker is open", name))
		}
		vr.Ready = healthy && admitting
		veps = append(veps, vr)
	}
	burning := d.slo.Burning()
	for _, subject := range burning {
		reasons = append(reasons, fmt.Sprintf("slo %s: error budget burning", subject))
	}
	code := http.StatusOK
	status := "ready"
	if len(reasons) > 0 {
		code = http.StatusServiceUnavailable
		status = "degraded"
	}
	writeJSON(w, code, struct {
		Status     string         `json:"status"`
		Reasons    []string       `json:"reasons,omitempty"`
		SLOBurning []string       `json:"slo_burning,omitempty"`
		VEPs       []vepReadiness `json:"veps"`
	}{Status: status, Reasons: reasons, SLOBurning: burning, VEPs: veps})
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// vepHandler serves SOAP posts addressed to /vep/<name> through the
// bus, and publishes each VEP's abstract contract on GET ?wsdl ("a VEP
// ... exposes an abstract WSDL for accessing the configured services").
// Every mediated request starts a trace, so /traces shows the gateway →
// VEP → attempt span tree with recovery annotations.
func vepHandler(gateway *bus.Bus, tel *telemetry.Telemetry) http.Handler {
	soapHandler := &transport.HTTPHandler{Service: transport.HandlerFunc(
		func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
			name := soap.ReadAddressing(req).To
			if name == "" {
				name = "vep:Retailer"
			}
			// Adopt a caller-propagated trace ID (the MASC TraceID SOAP
			// header) so multi-hop exchanges join one trace.
			traceID, _ := soap.TraceContext(req)
			ctx, span := tel.Traces().StartTraceID(ctx, "gateway "+name, traceID)
			span.SetAttr("route", name)
			resp, err := gateway.Invoke(ctx, name, req)
			span.EndErr(err)
			return resp, err
		})}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Query().Has("wsdl") {
			vep, err := gateway.VEP(strings.Trim(r.URL.Path, "/"))
			if err != nil || vep.Contract() == nil {
				http.NotFound(w, r)
				return
			}
			text, err := vep.Contract().Encode()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			fmt.Fprintln(w, text)
			return
		}
		soapHandler.ServeHTTP(w, r)
	})
}

// directHandler forwards to in-process service addresses
// (inproc://scm/retailer-a etc., named by path suffix, e.g.
// /svc/scm/retailer-a).
func directHandler(network *transport.Network) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		addr := "inproc://" + strings.TrimPrefix(r.URL.Path, "/svc/")
		h := &transport.HTTPHandler{Service: transport.HandlerFunc(
			func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
				return network.Invoke(ctx, addr, req)
			})}
		h.ServeHTTP(w, r)
	})
}
