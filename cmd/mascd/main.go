// Command mascd runs the MASC middleware as a real HTTP deployment:
// the SCM services are hosted on local HTTP ports, a wsBus gateway
// endpoint mediates them through a Retailer VEP with the Table 1
// recovery policies, and (optionally) a policy document supplied with
// -policies replaces the built-in one. Send SOAP POSTs at the gateway:
//
//	mascd -listen :8080
//	curl -s -X POST --data '<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"><e:Body><getCatalog xmlns="urn:wsi:scm"><category>tv</category></getCatalog></e:Body></e:Envelope>' http://localhost:8080/vep/Retailer
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
)

const defaultPolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="gateway-recovery">
  <AdaptationPolicy name="retry-then-failover" subject="vep:Retailer" priority="10" kind="correction">
    <OnEvent type="fault.detected"/>
    <Actions>
      <Retry maxAttempts="3" delay="2s"/>
      <Substitute selection="bestResponseTime"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mascd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	listen := ":8080"
	policyPath := ""
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-listen":
			i++
			if i >= len(args) {
				return fmt.Errorf("-listen needs an address")
			}
			listen = args[i]
		case "-policies":
			i++
			if i >= len(args) {
				return fmt.Errorf("-policies needs a file")
			}
			policyPath = args[i]
		default:
			return fmt.Errorf("unknown flag %q", args[i])
		}
	}

	// Backend SCM services on an in-process network but also exposed
	// over HTTP so external tools can hit them directly.
	network := transport.NewNetwork()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{Retailers: 2})
	if err != nil {
		return err
	}

	policyXML := defaultPolicies
	if policyPath != "" {
		raw, err := os.ReadFile(policyPath)
		if err != nil {
			return err
		}
		policyXML = string(raw)
	}
	repo := policy.NewRepository()
	if _, err := repo.LoadXML(policyXML); err != nil {
		return err
	}

	gateway := bus.New(network, bus.WithPolicyRepository(repo))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:      "Retailer",
		Services:  deployment.RetailerAddrs,
		Contract:  scm.RetailerContract(),
		Selection: policy.SelectRoundRobin,
	}); err != nil {
		return err
	}

	mux := http.NewServeMux()
	// Gateway endpoints: /vep/<name> mediates through the named VEP.
	mux.Handle("/vep/", http.StripPrefix("/vep/", vepHandler(gateway)))
	// Direct endpoints: /svc/<address suffix>, e.g. /svc/scm/retailer-a.
	mux.Handle("/svc/", directHandler(network))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	fmt.Printf("mascd: SOAP gateway on %s (VEPs: %s; retailers: %s)\n",
		ln.Addr(), strings.Join(gateway.VEPs(), ", "), strings.Join(deployment.RetailerAddrs, ", "))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return server.Shutdown(ctx)
	}
}

// vepHandler serves SOAP posts addressed to /vep/<name> through the
// bus, and publishes each VEP's abstract contract on GET ?wsdl ("a VEP
// ... exposes an abstract WSDL for accessing the configured services").
func vepHandler(gateway *bus.Bus) http.Handler {
	soapHandler := &transport.HTTPHandler{Service: transport.HandlerFunc(
		func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
			name := soap.ReadAddressing(req).To
			if name == "" {
				name = "vep:Retailer"
			}
			return gateway.Invoke(ctx, name, req)
		})}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Query().Has("wsdl") {
			vep, err := gateway.VEP(strings.Trim(r.URL.Path, "/"))
			if err != nil || vep.Contract() == nil {
				http.NotFound(w, r)
				return
			}
			text, err := vep.Contract().Encode()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			fmt.Fprintln(w, text)
			return
		}
		soapHandler.ServeHTTP(w, r)
	})
}

// directHandler forwards to in-process service addresses
// (inproc://scm/retailer-a etc., named by path suffix, e.g.
// /svc/scm/retailer-a).
func directHandler(network *transport.Network) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		addr := "inproc://" + strings.TrimPrefix(r.URL.Path, "/svc/")
		h := &transport.HTTPHandler{Service: transport.HandlerFunc(
			func(ctx context.Context, req *soap.Envelope) (*soap.Envelope, error) {
				return network.Invoke(ctx, addr, req)
			})}
		h.ServeHTTP(w, r)
	})
}
