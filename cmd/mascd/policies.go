package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/policy/compile"
	"github.com/masc-project/masc/internal/telemetry"
)

// policyDocInfo is one policy document in the management listing: its
// content hash, per-type policy counts, and any compiler diagnostics.
type policyDocInfo struct {
	Name        string               `json:"name"`
	SHA256      string               `json:"sha256,omitempty"`
	Monitoring  int                  `json:"monitoring"`
	Adaptation  int                  `json:"adaptation"`
	Protection  int                  `json:"protection"`
	Diagnostics []compile.Diagnostic `json:"diagnostics,omitempty"`
}

// policiesPage is the GET /api/v1/policies response: the published
// bundle (revision, compile time) and every loaded document.
type policiesPage struct {
	// Mode is "compiled" when the decision IR serves evaluations,
	// "interpreter" when the repository tree-walks policies per call.
	Mode       string          `json:"mode"`
	Revision   string          `json:"revision,omitempty"`
	CompiledAt *time.Time      `json:"compiled_at,omitempty"`
	Documents  []policyDocInfo `json:"documents"`
}

// docInfoFromStatus converts a compiled per-document status.
func docInfoFromStatus(ds *compile.DocStatus) policyDocInfo {
	return policyDocInfo{
		Name:        ds.Name,
		SHA256:      ds.SHA256,
		Monitoring:  ds.Monitoring,
		Adaptation:  ds.Adaptation,
		Protection:  ds.Protection,
		Diagnostics: ds.Diagnostics,
	}
}

// docInfoFromDocument summarizes a raw document (interpreter mode, or
// a GET on one document): hash and lint run on demand.
func docInfoFromDocument(doc *policy.Document) policyDocInfo {
	info := policyDocInfo{
		Name:        doc.Name,
		Monitoring:  len(doc.Monitoring),
		Adaptation:  len(doc.Adaptation),
		Protection:  len(doc.Protection),
		Diagnostics: compile.CheckDocument(doc),
	}
	if hash, err := compile.HashDocument(doc); err == nil {
		info.SHA256 = hash
	}
	return info
}

// policiesStatus builds the current listing from the live compiled set
// when one is published, or from the raw repository otherwise.
func (d *daemon) policiesStatus() policiesPage {
	if cs := compile.Lookup(d.repo); cs != nil {
		page := policiesPage{
			Mode:       "compiled",
			Revision:   cs.Manifest.Revision,
			CompiledAt: &cs.Manifest.CompiledAt,
			Documents:  []policyDocInfo{},
		}
		for _, ds := range cs.Docs() {
			page.Documents = append(page.Documents, docInfoFromStatus(ds))
		}
		return page
	}
	page := policiesPage{Mode: "interpreter", Documents: []policyDocInfo{}}
	for _, doc := range d.repo.Snapshot() {
		page.Documents = append(page.Documents, docInfoFromDocument(doc))
	}
	return page
}

// auditPolicyChange leaves one audit-journal entry per management-API
// policy mutation: who (remote address), what (action and document),
// when (the entry's timestamp).
func (d *daemon) auditPolicyChange(r *http.Request, action, document, outcome string) {
	d.tel.Logs().Record(telemetry.Entry{
		Level:     telemetry.LevelInfo,
		Kind:      telemetry.KindAudit,
		Component: "api",
		Message: fmt.Sprintf("policy %s %q by %s: %s",
			action, document, r.RemoteAddr, outcome),
		Fields: map[string]string{
			"action":   action,
			"document": document,
			"actor":    r.RemoteAddr,
			"outcome":  outcome,
		},
	})
}

// policiesIndex serves GET /api/v1/policies: the published bundle
// revision and every document's hash, counts, and diagnostics.
func (d *daemon) policiesIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, d.policiesStatus())
}

// policyManage routes /api/v1/policies/{name} (GET, PUT, DELETE) and
// POST /api/v1/policies/reload.
func (d *daemon) policyManage(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, apiPrefix+"/policies/")
	if name == "" {
		d.policiesIndex(w, r)
		return
	}
	if name == "reload" {
		d.policyReload(w, r)
		return
	}
	if strings.Contains(name, "/") {
		writeAPIError(w, http.StatusNotFound, "unknown resource "+r.URL.Path)
		return
	}
	switch r.Method {
	case http.MethodGet:
		d.policyGet(w, r, name)
	case http.MethodPut:
		d.policyPut(w, r, name)
	case http.MethodDelete:
		d.policyDelete(w, r, name)
	default:
		writeAPIError(w, http.StatusMethodNotAllowed, "use GET, PUT, or DELETE")
	}
}

// policyGet serves one document: the raw WS-Policy4MASC XML when the
// client asks for XML (Accept: */xml or ?format=xml), JSON metadata
// otherwise.
func (d *daemon) policyGet(w http.ResponseWriter, r *http.Request, name string) {
	doc := d.repo.Document(name)
	if doc == nil {
		writeAPIError(w, http.StatusNotFound, "no such policy document: "+name)
		return
	}
	accept := r.Header.Get("Accept")
	wantXML := strings.Contains(accept, "application/xml") ||
		strings.Contains(accept, "text/xml") ||
		r.URL.Query().Get("format") == "xml"
	if wantXML {
		text, err := doc.Encode()
		if err != nil {
			writeAPIError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/xml; charset=utf-8")
		fmt.Fprintln(w, text)
		return
	}
	writeJSON(w, http.StatusOK, docInfoFromDocument(doc))
}

// policyPut validates, compiles, and atomically publishes one document:
// the body is the WS-Policy4MASC XML, the path names the document it
// must declare. A document that fails validation or compilation is
// rejected with 422 and the compiler's structured diagnostics — the
// previously published set keeps serving, untouched.
func (d *daemon) policyPut(w http.ResponseWriter, r *http.Request, name string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	doc, err := policy.ParseString(string(body))
	if err != nil {
		d.auditPolicyChange(r, "put", name, "rejected: "+err.Error())
		writeJSON(w, http.StatusUnprocessableEntity, errorEnvelope{Error: errorBody{
			Code:        errorCode(http.StatusUnprocessableEntity),
			Message:     "document does not parse",
			Diagnostics: []compile.Diagnostic{compile.ErrorDiagnostic(err)},
		}})
		return
	}
	if doc.Name != name {
		writeAPIError(w, http.StatusBadRequest,
			fmt.Sprintf("body declares document %q, path names %q", doc.Name, name))
		return
	}
	diags := compile.CheckDocument(doc)
	if compile.HasErrors(diags) {
		d.auditPolicyChange(r, "put", name, "rejected: validation failed")
		writeJSON(w, http.StatusUnprocessableEntity, errorEnvelope{Error: errorBody{
			Code:        errorCode(http.StatusUnprocessableEntity),
			Message:     "document failed validation; previous policy set keeps serving",
			Diagnostics: diags,
		}})
		return
	}
	if err := d.repo.Load(doc); err != nil {
		d.auditPolicyChange(r, "put", name, "rejected: "+err.Error())
		writeJSON(w, http.StatusUnprocessableEntity, errorEnvelope{Error: errorBody{
			Code:        errorCode(http.StatusUnprocessableEntity),
			Message:     "document failed to compile; previous policy set keeps serving",
			Diagnostics: []compile.Diagnostic{compile.ErrorDiagnostic(err)},
		}})
		return
	}
	page := d.policiesStatus()
	d.auditPolicyChange(r, "put", name, "published revision "+page.Revision)
	writeJSON(w, http.StatusOK, struct {
		Document policyDocInfo `json:"document"`
		Bundle   policiesPage  `json:"bundle"`
	}{docInfoFromDocument(doc), page})
}

// policyDelete unloads one document; the remaining set is recompiled
// and swapped atomically.
func (d *daemon) policyDelete(w http.ResponseWriter, r *http.Request, name string) {
	if d.repo.Document(name) == nil {
		writeAPIError(w, http.StatusNotFound, "no such policy document: "+name)
		return
	}
	if !d.repo.Unload(name) {
		writeAPIError(w, http.StatusInternalServerError, "unload failed; previous policy set keeps serving")
		return
	}
	page := d.policiesStatus()
	d.auditPolicyChange(r, "delete", name, "published revision "+page.Revision)
	writeJSON(w, http.StatusOK, page)
}

// policyReload serves POST /api/v1/policies/reload: re-read the boot
// -policy-dir as one transaction and replace the whole document set —
// all of the bundle loads, or none of it does.
func (d *daemon) policyReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if d.policyDir == "" {
		writeAPIError(w, http.StatusBadRequest, "no -policy-dir configured; reload has nothing to read")
		return
	}
	bundle, err := compile.LoadDir(d.policyDir)
	if err != nil {
		d.auditPolicyChange(r, "reload", d.policyDir, "rejected: "+err.Error())
		writeJSON(w, http.StatusUnprocessableEntity, errorEnvelope{Error: errorBody{
			Code:        errorCode(http.StatusUnprocessableEntity),
			Message:     "bundle failed to load; previous policy set keeps serving",
			Diagnostics: []compile.Diagnostic{compile.ErrorDiagnostic(err)},
		}})
		return
	}
	var diags []compile.Diagnostic
	for _, doc := range bundle.Docs {
		for _, diag := range compile.CheckDocument(doc) {
			if diag.Severity == compile.SeverityError {
				diag.Message = fmt.Sprintf("document %q: %s", doc.Name, diag.Message)
				diags = append(diags, diag)
			}
		}
	}
	if len(diags) > 0 {
		d.auditPolicyChange(r, "reload", d.policyDir, "rejected: validation failed")
		writeJSON(w, http.StatusUnprocessableEntity, errorEnvelope{Error: errorBody{
			Code:        errorCode(http.StatusUnprocessableEntity),
			Message:     "bundle failed validation; previous policy set keeps serving",
			Diagnostics: diags,
		}})
		return
	}
	if err := d.repo.ReplaceAll(bundle.Docs); err != nil {
		d.auditPolicyChange(r, "reload", d.policyDir, "rejected: "+err.Error())
		writeJSON(w, http.StatusUnprocessableEntity, errorEnvelope{Error: errorBody{
			Code:        errorCode(http.StatusUnprocessableEntity),
			Message:     "bundle failed to compile; previous policy set keeps serving",
			Diagnostics: []compile.Diagnostic{compile.ErrorDiagnostic(err)},
		}})
		return
	}
	page := d.policiesStatus()
	d.auditPolicyChange(r, "reload", d.policyDir,
		fmt.Sprintf("published revision %s (%d documents)", page.Revision, len(page.Documents)))
	writeJSON(w, http.StatusOK, page)
}
