package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/masc-project/masc/internal/policy"
)

func apiServer(t *testing.T) (*daemon, *httptest.Server) {
	t.Helper()
	d := testDaemon(t)
	srv := httptest.NewServer(d.routes(false))
	t.Cleanup(srv.Close)
	return d, srv
}

func decodeJSON(t *testing.T, r io.Reader, v any) {
	t.Helper()
	if err := json.NewDecoder(r).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestAPIVepsListing(t *testing.T) {
	d, srv := apiServer(t)
	v, err := d.gateway.VEP("Retailer")
	if err != nil {
		t.Fatal(err)
	}
	v.ApplyProtection(&policy.ProtectionPolicy{
		Name:      "guard",
		Admission: &policy.AdmissionSpec{MaxInFlight: 8, MaxQueue: 16},
		Breaker:   &policy.BreakerSpec{FailureThreshold: 3, Cooldown: 10 * time.Second},
		Hedge:     &policy.HedgeSpec{AfterFactor: 1, MinSamples: 10, MaxHedges: 1},
	})

	hr, err := srv.Client().Get(srv.URL + "/api/v1/veps")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	var page struct {
		VEPs []vepSummary `json:"veps"`
	}
	decodeJSON(t, hr.Body, &page)
	if len(page.VEPs) != 1 {
		t.Fatalf("veps = %+v", page.VEPs)
	}
	got := page.VEPs[0]
	if got.Name != "Retailer" || got.Address != "vep:Retailer" || len(got.Services) != 2 {
		t.Fatalf("summary = %+v", got)
	}
	p := got.Protection
	if p == nil || p.Policy != "guard" || !p.Admission || !p.Breaker || !p.Hedge {
		t.Fatalf("protection = %+v", p)
	}
}

func TestAPIServiceManagement(t *testing.T) {
	_, srv := apiServer(t)
	client := srv.Client()
	base := srv.URL + "/api/v1/veps/Retailer/services"

	// Register a third equivalent service at runtime.
	hr, err := client.Post(base, "application/json",
		strings.NewReader(`{"address": "inproc://scm/retailer-x"}`))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		VEP      string   `json:"vep"`
		Services []string `json:"services"`
	}
	decodeJSON(t, hr.Body, &reg)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || len(reg.Services) != 3 {
		t.Fatalf("status = %d services = %v", hr.StatusCode, reg.Services)
	}

	// Deregister it again.
	req, _ := http.NewRequest(http.MethodDelete, base+"?address=inproc%3A%2F%2Fscm%2Fretailer-x", nil)
	hr, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, hr.Body, &reg)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || len(reg.Services) != 2 {
		t.Fatalf("status = %d services = %v", hr.StatusCode, reg.Services)
	}

	// A second delete reports not_found in the error envelope.
	hr, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var envl errorEnvelope
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound || envl.Error.Code != "not_found" {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}

	// Bad request body.
	hr, err = client.Post(base, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest || envl.Error.Code != "bad_request" {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}

	// Unknown VEP.
	hr, err = client.Get(srv.URL + "/api/v1/veps/Nope/services")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound || envl.Error.Code != "not_found" {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}
}

func TestAPIErrorEnvelopeWrapsLegacyErrors(t *testing.T) {
	_, srv := apiServer(t)

	// TracesHandler's legacy {"error": "unknown trace"} JSON is
	// rewrapped into the uniform envelope.
	hr, err := srv.Client().Get(srv.URL + "/api/v1/traces/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	var envl errorEnvelope
	decodeJSON(t, hr.Body, &envl)
	if envl.Error.Code != "not_found" || envl.Error.Message != "unknown trace" {
		t.Fatalf("envelope = %+v", envl)
	}

	// Method errors use the envelope too.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/veps", nil)
	hr2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr2.Body.Close()
	decodeJSON(t, hr2.Body, &envl)
	if hr2.StatusCode != http.StatusMethodNotAllowed || envl.Error.Code != "method_not_allowed" {
		t.Fatalf("status = %d envelope = %+v", hr2.StatusCode, envl)
	}
}

func TestAPIObservabilityAliases(t *testing.T) {
	_, srv := apiServer(t)
	postCatalog(t, srv)

	// The versioned metrics endpoint serves the same exposition as the
	// deprecated unversioned alias.
	for _, path := range []string{"/metrics", "/api/v1/metrics"} {
		hr, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK || !strings.Contains(string(body), "masc_vep_invocations_total") {
			t.Fatalf("%s: status = %d", path, hr.StatusCode)
		}
	}

	hr, err := srv.Client().Get(srv.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]any
	decodeJSON(t, hr.Body, &health)
	if _, ok := health["protection_policies"]; !ok {
		t.Fatalf("healthz missing protection_policies: %v", health)
	}
}
