package main

import (
	"sort"
	"time"

	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/telemetry/decision"
	"github.com/masc-project/masc/internal/workflow"
)

// Timeline sources, in merge order for same-instant events: a decision
// explains the journal entries and spans it caused, and a checkpoint
// seals what the instance looked like afterwards.
const (
	sourceDecision   = "decision"
	sourceJournal    = "journal"
	sourceTrace      = "trace"
	sourceCheckpoint = "checkpoint"
)

// timelineEvent is one entry in an instance's merged adaptation
// timeline. Exactly one of the detail pointers is set, matching Source.
type timelineEvent struct {
	Time    time.Time `json:"time"`
	Source  string    `json:"source"`
	Summary string    `json:"summary"`
	// Correlation keys shared across sources.
	Trace        string `json:"trace,omitempty"`
	Span         string `json:"span,omitempty"`
	Conversation string `json:"conversation,omitempty"`
	// Per-source detail.
	Decision   *decision.Record          `json:"decision,omitempty"`
	Journal    *telemetry.Entry          `json:"journal,omitempty"`
	SpanDetail *timelineSpan             `json:"span_detail,omitempty"`
	Checkpoint *workflow.CheckpointEvent `json:"checkpoint,omitempty"`
}

// timelineSpan is the flattened (non-recursive) trace-span rendering
// used inside timeline events.
type timelineSpan struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	End        time.Time         `json:"end"`
	DurationMS float64           `json:"durationMs"`
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// timelineReport is the /api/v1/instances/{id}/timeline response.
type timelineReport struct {
	Instance string `json:"instance"`
	// Sources lists which source kinds contributed at least one event.
	Sources []string        `json:"sources"`
	Count   int             `json:"count"`
	Events  []timelineEvent `json:"events"`
}

// instanceTimeline joins four observability planes into one
// time-ordered view of an instance's life: the decision records that
// explain why the middleware acted, the journal entries and trace
// spans that show what it did, and the checkpoint events that show
// when the instance's durable state moved. The join keys are the
// instance ID itself (decisions, checkpoints), the conversation ID
// (journal — the engine falls back to the instance ID there), and the
// trace IDs recovered from both.
func (d *daemon) instanceTimeline(id string) timelineReport {
	var events []timelineEvent
	traceIDs := map[string]bool{}

	// Decision records referencing the instance directly or through the
	// conversation ID (bus-side records of mediated invokes), deduped
	// by decision ID.
	seen := map[string]bool{}
	for _, q := range []decision.Query{{Instance: id}, {Conversation: id}} {
		for _, rec := range d.decisions.Records(q) {
			if seen[rec.ID] {
				continue
			}
			seen[rec.ID] = true
			if rec.Trace != "" {
				traceIDs[rec.Trace] = true
			}
			rec := rec
			events = append(events, timelineEvent{
				Time:         rec.Time,
				Source:       sourceDecision,
				Summary:      decisionSummary(&rec),
				Trace:        rec.Trace,
				Span:         rec.Span,
				Conversation: rec.Conversation,
				Decision:     &rec,
			})
		}
	}

	// Journal entries correlated by conversation (the engine stamps the
	// instance ID as the conversation for process-layer entries).
	for _, e := range d.tel.Logs().Entries(telemetry.Query{Conversation: id}) {
		if e.Trace != "" {
			traceIDs[e.Trace] = true
		}
		e := e
		events = append(events, timelineEvent{
			Time:         e.Time,
			Source:       sourceJournal,
			Summary:      string(e.Kind) + ": " + e.Message,
			Trace:        e.Trace,
			Span:         e.Span,
			Conversation: e.Conversation,
			Journal:      &e,
		})
	}

	// Trace spans from every trace the decisions and journal touched,
	// flattened so each span is one timeline event.
	for traceID := range traceIDs {
		view, ok := d.tel.Traces().Trace(traceID)
		if !ok {
			continue
		}
		events = appendSpanEvents(events, traceID, view.Root)
	}

	// Checkpoint events from the persistence layer (empty without
	// -data-dir).
	if d.persist != nil {
		for _, ev := range d.persist.CheckpointEvents(id) {
			ev := ev
			summary := "checkpoint " + ev.Kind + " (" + ev.State + ")"
			events = append(events, timelineEvent{
				Time:       ev.Time,
				Source:     sourceCheckpoint,
				Summary:    summary,
				Checkpoint: &ev,
			})
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		return events[i].Time.Before(events[j].Time)
	})
	if events == nil {
		events = []timelineEvent{}
	}

	present := map[string]bool{}
	for i := range events {
		present[events[i].Source] = true
	}
	sources := []string{}
	for _, s := range []string{sourceDecision, sourceJournal, sourceTrace, sourceCheckpoint} {
		if present[s] {
			sources = append(sources, s)
		}
	}
	return timelineReport{Instance: id, Sources: sources, Count: len(events), Events: events}
}

// appendSpanEvents flattens a span tree into timeline events, one per
// span, stamped with the owning trace ID.
func appendSpanEvents(events []timelineEvent, traceID string, sv telemetry.SpanView) []timelineEvent {
	summary := "span " + sv.Name
	if sv.Error != "" {
		summary += " (error: " + sv.Error + ")"
	}
	events = append(events, timelineEvent{
		Time:    sv.Start,
		Source:  sourceTrace,
		Summary: summary,
		Trace:   traceID,
		SpanDetail: &timelineSpan{
			Name:       sv.Name,
			Start:      sv.Start,
			End:        sv.End,
			DurationMS: sv.DurationMS,
			Error:      sv.Error,
			Attrs:      sv.Attrs,
		},
	})
	for _, c := range sv.Children {
		events = appendSpanEvents(events, traceID, c)
	}
	return events
}

// decisionSummary renders a one-line human summary of a decision
// record for the timeline listing.
func decisionSummary(rec *decision.Record) string {
	s := rec.Site + ": " + rec.Policy + " " + string(rec.Verdict)
	if rec.Action != "" {
		s += " → " + rec.Action
	}
	if rec.Reason != "" {
		s += " (" + rec.Reason + ")"
	}
	return s
}
