package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
)

// blockingPolicies replaces the default document with one that keeps
// the recovery rule but adds a pre-condition no getCatalog request
// satisfies — a behavior change observable at the gateway.
const blockingPolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="gateway-recovery">
  <MonitoringPolicy name="require-approval" subject="vep:Retailer" operation="getCatalog">
    <PreCondition name="approval-token">count(//ApprovalToken) &gt; 0</PreCondition>
  </MonitoringPolicy>
  <AdaptationPolicy name="retry-then-failover" subject="vep:Retailer" priority="10" kind="correction">
    <OnEvent type="fault.detected"/>
    <Actions>
      <Retry maxAttempts="3" delay="2s"/>
      <Substitute selection="bestResponseTime"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

// invalidPolicies parses but fails validation (a monitoring policy
// with nothing to monitor).
const invalidPolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="gateway-recovery">
  <MonitoringPolicy name="nothing" subject="vep:Retailer"/>
</PolicyDocument>`

// tryCatalog drives one getCatalog through the gateway and reports
// whether it succeeded (SOAP faults and violations count as failure).
func tryCatalog(t *testing.T, srv *httptest.Server) bool {
	t.Helper()
	inv := &transport.HTTPInvoker{}
	req := soap.NewRequest(scm.NewGetCatalogRequest("tv", 0))
	soap.Addressing{To: "vep:Retailer", Action: "getCatalog"}.Apply(req)
	resp, err := inv.Invoke(context.Background(), srv.URL+"/vep/Retailer", req)
	if err != nil {
		return false
	}
	return !resp.IsFault() && len(resp.Payload.ChildrenNamed("", "Product")) > 0
}

func getPolicies(t *testing.T, srv *httptest.Server) policiesPage {
	t.Helper()
	hr, err := srv.Client().Get(srv.URL + "/api/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("GET /policies status = %d", hr.StatusCode)
	}
	var page policiesPage
	decodeJSON(t, hr.Body, &page)
	return page
}

func putPolicy(t *testing.T, srv *httptest.Server, name, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut,
		srv.URL+"/api/v1/policies/"+name, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/xml")
	hr, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return hr
}

func TestAPIPoliciesListing(t *testing.T) {
	_, srv := apiServer(t)
	page := getPolicies(t, srv)
	if page.Mode != "compiled" {
		t.Fatalf("mode = %q", page.Mode)
	}
	if page.Revision == "" || page.CompiledAt == nil {
		t.Fatalf("bundle identity missing: %+v", page)
	}
	if len(page.Documents) != 1 {
		t.Fatalf("documents = %+v", page.Documents)
	}
	doc := page.Documents[0]
	if doc.Name != "gateway-recovery" || len(doc.SHA256) != 64 || doc.Adaptation != 1 {
		t.Fatalf("document = %+v", doc)
	}
}

func TestAPIPolicyGetContentNegotiation(t *testing.T) {
	_, srv := apiServer(t)

	// Default: JSON metadata.
	hr, err := srv.Client().Get(srv.URL + "/api/v1/policies/gateway-recovery")
	if err != nil {
		t.Fatal(err)
	}
	var info policyDocInfo
	decodeJSON(t, hr.Body, &info)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || info.Name != "gateway-recovery" || len(info.SHA256) != 64 {
		t.Fatalf("status = %d info = %+v", hr.StatusCode, info)
	}

	// Accept: application/xml serves the raw document.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/policies/gateway-recovery", nil)
	req.Header.Set("Accept", "application/xml")
	hr, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := hr.Body.Read(body)
	hr.Body.Close()
	if ct := hr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/xml") {
		t.Fatalf("content-type = %q", ct)
	}
	if text := string(body[:n]); !strings.Contains(text, "PolicyDocument") || !strings.Contains(text, "gateway-recovery") {
		t.Fatalf("xml body = %q", text)
	}

	// Unknown document: 404 envelope.
	hr, err = srv.Client().Get(srv.URL + "/api/v1/policies/no-such-doc")
	if err != nil {
		t.Fatal(err)
	}
	var envl errorEnvelope
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound || envl.Error.Code != "not_found" {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}
}

// TestAPIPolicyHotReload is the end-to-end hot-swap proof: a PUT that
// compiles replaces the live policy set, and the very next gateway
// evaluation uses it — no restart.
func TestAPIPolicyHotReload(t *testing.T) {
	_, srv := apiServer(t)

	if !tryCatalog(t, srv) {
		t.Fatal("baseline getCatalog failed under the default policies")
	}
	before := getPolicies(t, srv)

	// Swap in the blocking document.
	hr := putPolicy(t, srv, "gateway-recovery", blockingPolicies)
	var put struct {
		Document policyDocInfo `json:"document"`
		Bundle   policiesPage  `json:"bundle"`
	}
	decodeJSON(t, hr.Body, &put)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", hr.StatusCode)
	}
	if put.Bundle.Revision == before.Revision {
		t.Fatal("revision did not change after PUT")
	}
	if put.Document.Monitoring != 1 {
		t.Fatalf("document = %+v", put.Document)
	}

	// The next evaluation enforces the new pre-condition.
	if tryCatalog(t, srv) {
		t.Fatal("getCatalog still succeeds; new policy not live")
	}

	// Swap the original back; traffic recovers, again without restart.
	hr = putPolicy(t, srv, "gateway-recovery", defaultPolicies)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("restore PUT status = %d", hr.StatusCode)
	}
	if !tryCatalog(t, srv) {
		t.Fatal("getCatalog still blocked after restoring the default policies")
	}
}

// TestAPIPolicyPutInvalid proves the reject path: 422 with structured
// diagnostics, and the previously published set keeps serving.
func TestAPIPolicyPutInvalid(t *testing.T) {
	_, srv := apiServer(t)
	before := getPolicies(t, srv)

	hr := putPolicy(t, srv, "gateway-recovery", invalidPolicies)
	var envl errorEnvelope
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	if envl.Error.Code != "unprocessable" || len(envl.Error.Diagnostics) == 0 {
		t.Fatalf("envelope = %+v", envl)
	}

	// Unparseable XML also lands on 422 with a diagnostic.
	hr = putPolicy(t, srv, "gateway-recovery", "<not xml")
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusUnprocessableEntity || len(envl.Error.Diagnostics) == 0 {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}

	// A body whose document name disagrees with the path is a client
	// error, not a validation failure.
	hr = putPolicy(t, srv, "some-other-name", defaultPolicies)
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest || envl.Error.Code != "bad_request" {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}

	// The old set is untouched and still serving.
	after := getPolicies(t, srv)
	if after.Revision != before.Revision {
		t.Fatalf("revision changed across rejected PUTs: %s -> %s", before.Revision, after.Revision)
	}
	if !tryCatalog(t, srv) {
		t.Fatal("gateway traffic broken after rejected PUTs")
	}
}

func TestAPIPolicyDelete(t *testing.T) {
	_, srv := apiServer(t)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/policies/gateway-recovery", nil)
	hr, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var page policiesPage
	decodeJSON(t, hr.Body, &page)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || len(page.Documents) != 0 {
		t.Fatalf("status = %d page = %+v", hr.StatusCode, page)
	}

	// Deleting again: 404.
	hr, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var envl errorEnvelope
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound || envl.Error.Code != "not_found" {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}
}

func TestAPIPolicyReload(t *testing.T) {
	d, srv := apiServer(t)

	// Without -policy-dir there is nothing to reload.
	hr, err := srv.Client().Post(srv.URL+"/api/v1/policies/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var envl errorEnvelope
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}

	// Point the daemon at a two-document bundle directory.
	dir := t.TempDir()
	second := strings.Replace(blockingPolicies, `name="gateway-recovery"`, `name="extra-guards"`, 1)
	if err := os.WriteFile(filepath.Join(dir, "a-recovery.xml"), []byte(defaultPolicies), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b-guards.xml"), []byte(second), 0o644); err != nil {
		t.Fatal(err)
	}
	d.policyDir = dir

	hr, err = srv.Client().Post(srv.URL+"/api/v1/policies/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var page policiesPage
	decodeJSON(t, hr.Body, &page)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK || len(page.Documents) != 2 {
		t.Fatalf("status = %d page = %+v", hr.StatusCode, page)
	}
	goodRevision := page.Revision

	// A broken file rejects the whole reload; the published two-document
	// set keeps serving.
	if err := os.WriteFile(filepath.Join(dir, "c-broken.xml"), []byte(invalidPolicies), 0o644); err != nil {
		t.Fatal(err)
	}
	hr, err = srv.Client().Post(srv.URL+"/api/v1/policies/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, hr.Body, &envl)
	hr.Body.Close()
	if hr.StatusCode != http.StatusUnprocessableEntity || len(envl.Error.Diagnostics) == 0 {
		t.Fatalf("status = %d envelope = %+v", hr.StatusCode, envl)
	}
	after := getPolicies(t, srv)
	if after.Revision != goodRevision || len(after.Documents) != 2 {
		t.Fatalf("published set changed across rejected reload: %+v", after)
	}
}
