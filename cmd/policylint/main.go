// Command policylint parses and validates WS-Policy4MASC documents:
//
//	policylint policies/*.xml
//
// For each file it reports parse errors, consistency violations (the
// checks the paper claims over RobustBPEL: layer coverage, action
// ordering, trigger/kind coherence), and on success a summary of the
// policies the document defines. It also warns — without failing — on
// two classes of dead policy: adaptation policies whose OnEvent type
// no middleware component ever publishes (the policy can never fire),
// and messaging-layer adaptation policies shadowed by an unconditional
// higher-priority sibling with the same (or broader) scope and
// trigger, which the bus's first-match recovery always picks instead.
// Exit status is non-zero if any file fails.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/policy/compile"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: policylint <file.xml>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		warnings, err := lint(path)
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "policylint: %s: warning: %s\n", path, w)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "policylint: %s: %v\n", path, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// lint runs the shared compiler front-end (compile.CheckDocument) over
// one file: validation failures become the returned error, lint
// findings become the warning strings — the same diagnostics the
// policy-management API returns for a rejected PUT.
func lint(path string) (warnings []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	doc, err := policy.Parse(f)
	if err != nil {
		return nil, err
	}
	for _, d := range compile.CheckDocument(doc) {
		if d.Severity == compile.SeverityError {
			return nil, errors.New(d.Message)
		}
		warnings = append(warnings, d.Message)
	}
	fmt.Printf("%s: document %q OK — %d monitoring, %d adaptation, %d protection\n",
		path, doc.Name, len(doc.Monitoring), len(doc.Adaptation), len(doc.Protection))
	for _, mp := range doc.Monitoring {
		fmt.Printf("  monitoring %-28s subject=%q operation=%q pre=%d post=%d thresholds=%d\n",
			mp.Name, mp.Subject, mp.Operation,
			len(mp.PreConditions), len(mp.PostConditions), len(mp.Thresholds))
	}
	for _, ap := range doc.Adaptation {
		fmt.Printf("  adaptation %-28s subject=%q kind=%s layer=%s priority=%d trigger=%s actions=%d\n",
			ap.Name, ap.Subject, ap.Kind, ap.Layer, ap.Priority, ap.Trigger.EventType, len(ap.Actions))
	}
	for _, pp := range doc.Protection {
		fmt.Printf("  protection %-28s subject=%q admission=%v breaker=%v hedge=%v\n",
			pp.Name, pp.Subject, pp.Admission != nil, pp.Breaker != nil, pp.Hedge != nil)
	}
	return warnings, nil
}
