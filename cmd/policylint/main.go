// Command policylint parses and validates WS-Policy4MASC documents:
//
//	policylint policies/*.xml
//
// For each file it reports parse errors, consistency violations (the
// checks the paper claims over RobustBPEL: layer coverage, action
// ordering, trigger/kind coherence), and on success a summary of the
// policies the document defines. It also warns — without failing — on
// adaptation policies whose OnEvent type no middleware component ever
// publishes, since such a policy can never fire. Exit status is
// non-zero if any file fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: policylint <file.xml>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		warnings, err := lint(path)
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "policylint: %s: warning: %s\n", path, w)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "policylint: %s: %v\n", path, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func lint(path string) (warnings []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	doc, err := policy.Parse(f)
	if err != nil {
		return nil, err
	}
	if err := policy.Validate(doc); err != nil {
		return nil, err
	}
	warnings = deadTriggers(doc)
	fmt.Printf("%s: document %q OK — %d monitoring, %d adaptation, %d protection\n",
		path, doc.Name, len(doc.Monitoring), len(doc.Adaptation), len(doc.Protection))
	for _, mp := range doc.Monitoring {
		fmt.Printf("  monitoring %-28s subject=%q operation=%q pre=%d post=%d thresholds=%d\n",
			mp.Name, mp.Subject, mp.Operation,
			len(mp.PreConditions), len(mp.PostConditions), len(mp.Thresholds))
	}
	for _, ap := range doc.Adaptation {
		fmt.Printf("  adaptation %-28s subject=%q kind=%s layer=%s priority=%d trigger=%s actions=%d\n",
			ap.Name, ap.Subject, ap.Kind, ap.Layer, ap.Priority, ap.Trigger.EventType, len(ap.Actions))
	}
	for _, pp := range doc.Protection {
		fmt.Printf("  protection %-28s subject=%q admission=%v breaker=%v hedge=%v\n",
			pp.Name, pp.Subject, pp.Admission != nil, pp.Breaker != nil, pp.Hedge != nil)
	}
	return warnings, nil
}

// deadTriggers flags adaptation policies whose OnEvent type is never
// published by any middleware component: the policy is syntactically
// valid but can never fire.
func deadTriggers(doc *policy.Document) []string {
	var out []string
	for _, ap := range doc.Adaptation {
		if t := ap.Trigger.EventType; t != "" && !event.IsPublished(t) {
			out = append(out, fmt.Sprintf(
				"adaptation policy %q triggers on %q, which no component publishes — the policy can never fire (published types: %v)",
				ap.Name, t, event.PublishedTypes()))
		}
	}
	return out
}
