// Command policylint parses and validates WS-Policy4MASC documents:
//
//	policylint policies/*.xml
//
// For each file it reports parse errors, consistency violations (the
// checks the paper claims over RobustBPEL: layer coverage, action
// ordering, trigger/kind coherence), and on success a summary of the
// policies the document defines. It also warns — without failing — on
// two classes of dead policy: adaptation policies whose OnEvent type
// no middleware component ever publishes (the policy can never fire),
// and messaging-layer adaptation policies shadowed by an unconditional
// higher-priority sibling with the same (or broader) scope and
// trigger, which the bus's first-match recovery always picks instead.
// Exit status is non-zero if any file fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/policy"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: policylint <file.xml>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		warnings, err := lint(path)
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "policylint: %s: warning: %s\n", path, w)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "policylint: %s: %v\n", path, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func lint(path string) (warnings []string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	doc, err := policy.Parse(f)
	if err != nil {
		return nil, err
	}
	if err := policy.Validate(doc); err != nil {
		return nil, err
	}
	warnings = deadTriggers(doc)
	warnings = append(warnings, shadowedPolicies(doc)...)
	fmt.Printf("%s: document %q OK — %d monitoring, %d adaptation, %d protection\n",
		path, doc.Name, len(doc.Monitoring), len(doc.Adaptation), len(doc.Protection))
	for _, mp := range doc.Monitoring {
		fmt.Printf("  monitoring %-28s subject=%q operation=%q pre=%d post=%d thresholds=%d\n",
			mp.Name, mp.Subject, mp.Operation,
			len(mp.PreConditions), len(mp.PostConditions), len(mp.Thresholds))
	}
	for _, ap := range doc.Adaptation {
		fmt.Printf("  adaptation %-28s subject=%q kind=%s layer=%s priority=%d trigger=%s actions=%d\n",
			ap.Name, ap.Subject, ap.Kind, ap.Layer, ap.Priority, ap.Trigger.EventType, len(ap.Actions))
	}
	for _, pp := range doc.Protection {
		fmt.Printf("  protection %-28s subject=%q admission=%v breaker=%v hedge=%v\n",
			pp.Name, pp.Subject, pp.Admission != nil, pp.Breaker != nil, pp.Hedge != nil)
	}
	return warnings, nil
}

// deadTriggers flags adaptation policies whose OnEvent type is never
// published by any middleware component: the policy is syntactically
// valid but can never fire.
func deadTriggers(doc *policy.Document) []string {
	var out []string
	for _, ap := range doc.Adaptation {
		if t := ap.Trigger.EventType; t != "" && !event.IsPublished(t) {
			out = append(out, fmt.Sprintf(
				"adaptation policy %q triggers on %q, which no component publishes — the policy can never fire (published types: %v)",
				ap.Name, t, event.PublishedTypes()))
		}
	}
	return out
}

// shadowedPolicies flags messaging-layer adaptation policies that can
// never enact because a higher-priority sibling always wins first: the
// bus's corrective recovery stops at the first policy whose gates
// hold, so a sibling with the same (or broader) scope and trigger that
// has no state-before gate and no condition matches every event the
// shadowed policy could have handled. Process-layer policies are
// exempt — the decision maker dispatches every applicable policy.
func shadowedPolicies(doc *policy.Document) []string {
	var out []string
	for _, ap := range doc.Adaptation {
		if ap.Layer == policy.LayerProcess {
			continue
		}
		for _, winner := range doc.Adaptation {
			if winner == ap || winner.Layer == policy.LayerProcess {
				continue
			}
			if !sortsBefore(winner, ap) || !covers(winner, ap) {
				continue
			}
			if winner.StateBefore != "" || winner.Condition != nil {
				continue
			}
			out = append(out, fmt.Sprintf(
				"adaptation policy %q is shadowed by %q (priority %d >= %d): same scope and trigger, and %q has no state or condition gate, so the messaging layer's first-match recovery always picks it — %q can never enact",
				ap.Name, winner.Name, winner.Priority, ap.Priority, winner.Name, ap.Name))
			break
		}
	}
	return out
}

// sortsBefore mirrors Repository.AdaptationFor's ordering: descending
// priority, ties broken by ascending name.
func sortsBefore(a, b *policy.AdaptationPolicy) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Name < b.Name
}

// covers reports whether policy a is evaluated for every event that
// would reach policy b: a's scope and trigger are equal to or broader
// than b's (an empty field matches everything, so it covers any
// narrower value).
func covers(a, b *policy.AdaptationPolicy) bool {
	if a.Scope.Subject != "" && a.Scope.Subject != b.Scope.Subject {
		return false
	}
	if a.Scope.Operation != "" && a.Scope.Operation != b.Scope.Operation {
		return false
	}
	if a.Trigger.EventType != "" && a.Trigger.EventType != b.Trigger.EventType {
		return false
	}
	if a.Trigger.FaultType != "" && a.Trigger.FaultType != b.Trigger.FaultType {
		return false
	}
	return true
}
