package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintValidDocument(t *testing.T) {
	path := write(t, "ok.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="ok">
  <MonitoringPolicy name="m" subject="vep:S">
    <PreCondition name="p">//x != ''</PreCondition>
  </MonitoringPolicy>
  <AdaptationPolicy name="a" subject="vep:S" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	warnings, err := lint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
}

func TestLintParseError(t *testing.T) {
	path := write(t, "bad.xml", "not xml")
	if _, err := lint(path); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestLintConsistencyError(t *testing.T) {
	path := write(t, "inconsistent.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="bad">
  <AdaptationPolicy name="a" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	if _, err := lint(path); err == nil {
		t.Fatal("consistency violation not reported")
	}
}

func TestLintWarnsOnDeadTrigger(t *testing.T) {
	// adaptation.requested is declared in the event vocabulary but no
	// middleware component publishes it, so this policy can never fire.
	path := write(t, "dead.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="dead">
  <AdaptationPolicy name="never-fires" subject="vep:S" priority="1">
    <OnEvent type="adaptation.requested"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="fires" subject="vep:S" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	warnings, err := lint(path)
	if err != nil {
		t.Fatalf("dead trigger must warn, not fail: %v", err)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warnings)
	}
	if !strings.Contains(warnings[0], "never-fires") ||
		!strings.Contains(warnings[0], "adaptation.requested") {
		t.Fatalf("warning does not name the policy and type: %q", warnings[0])
	}
}

func TestLintMissingFile(t *testing.T) {
	if _, err := lint(filepath.Join(t.TempDir(), "ghost.xml")); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestLintShippedPolicies(t *testing.T) {
	// The sample documents in policies/ must stay valid and warning-free.
	for _, doc := range []string{
		"../../policies/scm-recovery.xml",
		"../../policies/overload-protection.xml",
	} {
		warnings, err := lint(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(warnings) != 0 {
			t.Fatalf("%s produces warnings: %v", doc, warnings)
		}
	}
}
