package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintValidDocument(t *testing.T) {
	path := write(t, "ok.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="ok">
  <MonitoringPolicy name="m" subject="vep:S">
    <PreCondition name="p">//x != ''</PreCondition>
  </MonitoringPolicy>
  <AdaptationPolicy name="a" subject="vep:S" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	if err := lint(path); err != nil {
		t.Fatal(err)
	}
}

func TestLintParseError(t *testing.T) {
	path := write(t, "bad.xml", "not xml")
	if err := lint(path); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestLintConsistencyError(t *testing.T) {
	path := write(t, "inconsistent.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="bad">
  <AdaptationPolicy name="a" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	if err := lint(path); err == nil {
		t.Fatal("consistency violation not reported")
	}
}

func TestLintMissingFile(t *testing.T) {
	if err := lint(filepath.Join(t.TempDir(), "ghost.xml")); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestLintShippedPolicies(t *testing.T) {
	// The sample document in policies/ must stay valid.
	if err := lint("../../policies/scm-recovery.xml"); err != nil {
		t.Fatal(err)
	}
}
