package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintValidDocument(t *testing.T) {
	path := write(t, "ok.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="ok">
  <MonitoringPolicy name="m" subject="vep:S">
    <PreCondition name="p">//x != ''</PreCondition>
  </MonitoringPolicy>
  <AdaptationPolicy name="a" subject="vep:S" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	warnings, err := lint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", warnings)
	}
}

func TestLintParseError(t *testing.T) {
	path := write(t, "bad.xml", "not xml")
	if _, err := lint(path); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestLintConsistencyError(t *testing.T) {
	path := write(t, "inconsistent.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="bad">
  <AdaptationPolicy name="a" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	if _, err := lint(path); err == nil {
		t.Fatal("consistency violation not reported")
	}
}

func TestLintWarnsOnDeadTrigger(t *testing.T) {
	// adaptation.requested is declared in the event vocabulary but no
	// middleware component publishes it, so this policy can never fire.
	path := write(t, "dead.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="dead">
  <AdaptationPolicy name="never-fires" subject="vep:S" priority="1">
    <OnEvent type="adaptation.requested"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="fires" subject="vep:S" priority="1">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	warnings, err := lint(path)
	if err != nil {
		t.Fatalf("dead trigger must warn, not fail: %v", err)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warnings)
	}
	if !strings.Contains(warnings[0], "never-fires") ||
		!strings.Contains(warnings[0], "adaptation.requested") {
		t.Fatalf("warning does not name the policy and type: %q", warnings[0])
	}
}

func TestLintWarnsOnShadowedPolicy(t *testing.T) {
	// catch-all has higher priority, the same scope and trigger, and no
	// gates, so the bus's first-match recovery never reaches specific.
	path := write(t, "shadowed.xml", `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="shadowed">
  <AdaptationPolicy name="catch-all" subject="vep:S" priority="20">
    <OnEvent type="fault.detected"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="specific" subject="vep:S" priority="10">
    <OnEvent type="fault.detected" faultType="wsbus:Timeout"/>
    <Actions><Substitute selection="first"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`)
	warnings, err := lint(path)
	if err != nil {
		t.Fatalf("shadowed policy must warn, not fail: %v", err)
	}
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warnings)
	}
	if !strings.Contains(warnings[0], `"specific" is shadowed by "catch-all"`) {
		t.Fatalf("warning does not name both policies: %q", warnings[0])
	}
}

func TestLintShadowLintExemptions(t *testing.T) {
	for name, doc := range map[string]string{
		// A winner gated by a condition does not shadow: when the
		// condition is false, evaluation falls through to the sibling.
		"guarded winner": `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="ok">
  <AdaptationPolicy name="gated" subject="vep:S" priority="20">
    <OnEvent type="fault.detected"/>
    <Condition>$faultType = 'wsbus:Timeout'</Condition>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="fallback" subject="vep:S" priority="10">
    <OnEvent type="fault.detected"/>
    <Actions><Substitute selection="first"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`,
		// A winner with a narrower fault trigger leaves other faults to
		// the sibling.
		"narrower winner": `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="ok">
  <AdaptationPolicy name="timeouts-only" subject="vep:S" priority="20">
    <OnEvent type="fault.detected" faultType="wsbus:Timeout"/>
    <Actions><Retry maxAttempts="1"/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="everything-else" subject="vep:S" priority="10">
    <OnEvent type="fault.detected"/>
    <Actions><Substitute selection="first"/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`,
		// Process-layer policies are all dispatched by the decision
		// maker, so priority order cannot starve them.
		"process layer": `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="ok">
  <AdaptationPolicy name="first" subject="OrderingProcess" priority="20" layer="process">
    <OnEvent type="fault.detected"/>
    <Actions><SuspendProcess/></Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="second" subject="OrderingProcess" priority="10" layer="process">
    <OnEvent type="fault.detected"/>
    <Actions><SuspendProcess/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`,
	} {
		path := write(t, "exempt.xml", doc)
		warnings, err := lint(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(warnings) != 0 {
			t.Fatalf("%s: unexpected warnings: %v", name, warnings)
		}
	}
}

func TestLintMissingFile(t *testing.T) {
	if _, err := lint(filepath.Join(t.TempDir(), "ghost.xml")); err == nil {
		t.Fatal("missing file not reported")
	}
}

func TestLintShippedPolicies(t *testing.T) {
	// The sample documents in policies/ must stay valid and warning-free.
	for _, doc := range []string{
		"../../policies/scm-recovery.xml",
		"../../policies/overload-protection.xml",
	} {
		warnings, err := lint(doc)
		if err != nil {
			t.Fatal(err)
		}
		if len(warnings) != 0 {
			t.Fatalf("%s produces warnings: %v", doc, warnings)
		}
	}
}
