// Command docscheck keeps the documentation honest in CI. It has two
// passes, both run from the repository root:
//
//  1. Markdown link check — every relative link target in docs/*.md
//     and the top-level markdown files must exist on disk (external
//     http(s)/mailto links and pure #fragments are skipped).
//  2. Godoc coverage — every exported declaration in internal/store
//     (the on-disk format's implementation, specified by
//     docs/persistence.md) must carry a doc comment.
//
// Any finding prints as file: message and the process exits 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var problems []string
	problems = append(problems, checkLinks()...)
	problems = append(problems, checkGodoc("internal/store")...)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, "docscheck:", p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// linkPattern matches inline markdown links [text](target). Reference
// definitions and autolinks are out of scope — the repo's docs use
// inline links only.
var linkPattern = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// docFiles returns the markdown set under check: everything in docs/
// plus the top-level markdown files.
func docFiles() ([]string, error) {
	files, err := filepath.Glob("docs/*.md")
	if err != nil {
		return nil, err
	}
	top, err := filepath.Glob("*.md")
	if err != nil {
		return nil, err
	}
	return append(files, top...), nil
}

func checkLinks() []string {
	files, err := docFiles()
	if err != nil {
		return []string{err.Error()}
	}
	if len(files) == 0 {
		return []string{"no markdown files found (run from the repository root)"}
	}
	var problems []string
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q (%s does not exist)", file, m[1], resolved))
			}
		}
	}
	return problems
}

// checkGodoc parses one package directory and reports every exported
// top-level declaration (and method on an exported receiver) without a
// doc comment. Grouped const/var specs are covered by the group's doc.
func checkGodoc(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s lacks a doc comment", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "func "+d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
								report(s.Pos(), "type "+s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(name.Pos(), "value "+name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver type is
// exported (true for plain functions). Methods on unexported types are
// not part of the package's documented surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return true
}
