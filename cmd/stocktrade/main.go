// Command stocktrade drives the paper's §2.2 customization experiments
// end to end: it deploys the Fig. 2 stock-trading services, loads the
// WS-Policy4MASC customization policies, runs the base national
// process for several investor orders, and narrates which activities
// MASC added or removed per instance — all without ever editing the
// process definition.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/masc-project/masc/internal/core"
	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/stocktrade"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
	"github.com/masc-project/masc/internal/xmltree"
)

// customizationPolicies are the §2.2 experiments: add CurrencyConversion
// for international trades, PESTAnalysis by country, CreditRating over
// an amount/profile constraint, and remove MarketCompliance below a
// threshold.
const customizationPolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="international-trading">
  <AdaptationPolicy name="add-currency-conversion" subject="TradingProcess" kind="customization" layer="process" priority="8">
    <OnEvent type="process.started"/>
    <Condition>//order/placeOrder/Market != 'domestic'</Condition>
    <StateAfter>international</StateAfter>
    <Actions>
      <AddActivity anchor="Analyze" position="after">
        <Activity><invoke name="CurrencyConversion" endpoint="inproc://trade/currency-1" operation="convert" input="order"/></Activity>
      </AddActivity>
    </Actions>
    <BusinessValue amount="12.5" currency="AUD" reason="international trade fee"/>
  </AdaptationPolicy>
  <AdaptationPolicy name="add-pest-analysis" subject="TradingProcess" kind="customization" layer="process" priority="7">
    <OnEvent type="process.started"/>
    <Condition>//order/placeOrder/Market != 'domestic' and //order/placeOrder/Country != ''</Condition>
    <Actions>
      <AddActivity anchor="Analyze" position="after">
        <Activity><invoke name="PESTAnalysis" endpoint="inproc://trade/pest-1" operation="assess" input="order"/></Activity>
      </AddActivity>
    </Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="add-credit-rating" subject="TradingProcess" kind="customization" layer="process" priority="6">
    <OnEvent type="process.started"/>
    <Condition>number(//order/placeOrder/Amount) > 10000 or //order/placeOrder/Profile = 'corporate'</Condition>
    <Actions>
      <AddActivity anchor="ExecuteTrade" position="before">
        <Activity><invoke name="CreditRating" endpoint="inproc://trade/credit-1" operation="rate" input="order"/></Activity>
      </AddActivity>
    </Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="drop-compliance-small-trades" subject="TradingProcess" kind="customization" layer="process" priority="5">
    <OnEvent type="process.started"/>
    <Condition>number(//order/placeOrder/Amount) &lt; 1000</Condition>
    <Actions>
      <RemoveActivity activity="MarketCompliance"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stocktrade:", err)
		os.Exit(1)
	}
}

type order struct {
	label   string
	market  string
	country string
	profile string
	amount  float64
}

func run() error {
	net := transport.NewNetwork()
	if _, err := stocktrade.Deploy(net, nil, 2); err != nil {
		return err
	}
	stack := core.NewStack(net)
	defer stack.Close()
	if err := stack.LoadPolicies(customizationPolicies); err != nil {
		return err
	}
	def, err := workflow.ParseDefinitionString(stocktrade.BaseProcessXML)
	if err != nil {
		return err
	}
	stack.Engine.Deploy(def)

	// Track which activities each instance runs.
	activities := map[string][]string{}
	stack.Events.Subscribe(event.TypeActivityCompleted, func(ev event.Event) {
		if ev.Detail == "invoke" || strings.HasPrefix(ev.Operation, "main") {
			activities[ev.ProcessInstanceID] = append(activities[ev.ProcessInstanceID], ev.Operation)
		}
	})

	orders := []order{
		{"small domestic personal trade", "domestic", "Australia", "personal", 500},
		{"large domestic corporate trade", "domestic", "Australia", "corporate", 50000},
		{"small international trade (Japan)", "international", "Japan", "personal", 800},
		{"large international corporate trade (Japan)", "international", "Japan", "corporate", 120000},
	}
	for _, o := range orders {
		payload, err := xmltree.ParseString(stocktrade.NewOrderPayload(o.market, o.country, o.profile, o.amount, "buy"))
		if err != nil {
			return err
		}
		inst, err := stack.Engine.Start("TradingProcess", map[string]*xmltree.Element{"order": payload})
		if err != nil {
			return err
		}
		state, err := inst.Wait(10 * time.Second)
		fmt.Printf("\n=== %s (instance %s) ===\n", o.label, inst.ID())
		fmt.Printf("  final state: %s", state)
		if err != nil {
			fmt.Printf(" (%v)", err)
		}
		fmt.Println()
		fmt.Printf("  adaptation state: %q\n", inst.AdaptationState())
		fmt.Printf("  activities executed: %s\n", strings.Join(activities[inst.ID()], " → "))
	}

	fmt.Println("\n=== business value booked by adaptations ===")
	for _, e := range stack.Ledger.Entries() {
		fmt.Printf("  %-30s %+.2f %s (%s) instance=%s\n",
			e.PolicyName, e.Amount, e.Currency, e.Reason, e.ProcessInstanceID)
	}
	fmt.Printf("  total AUD: %+.2f\n", stack.Ledger.Total("AUD"))
	return nil
}
