package main

import (
	"testing"

	"github.com/masc-project/masc/internal/policy"
)

func TestCustomizationPoliciesAreValid(t *testing.T) {
	doc, err := policy.ParseString(customizationPolicies)
	if err != nil {
		t.Fatal(err)
	}
	if err := policy.Validate(doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Adaptation) != 4 {
		t.Fatalf("policies = %d", len(doc.Adaptation))
	}
}

func TestRunScenarioMatrix(t *testing.T) {
	// The driver must complete every scenario without error.
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
