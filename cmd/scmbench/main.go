// Command scmbench regenerates the paper's evaluation artifacts on the
// WS-I Supply Chain Management case study:
//
//	scmbench -table1      # Table 1: reliability/availability, direct vs wsBus
//	scmbench -figure5     # Figure 5: RTT vs request size, direct vs wsBus
//	scmbench -throughput  # throughput sweep (§3.2 metric)
//	scmbench -hedge       # hedged invocation vs plain: tail latency under QoS degradation
//	scmbench -persist     # durable checkpointing: throughput vs store fsync policy
//	scmbench -policybench # policy evaluation: tree interpreter vs compiled decision IR
//	scmbench -cluster     # multi-node scaling: sharded gateways at 1/2/4 nodes over loopback
//	scmbench -ablations   # retry budget, strategy, policy-reparse, listener
//	scmbench -all         # everything
//
// Results print as formatted tables; -csv additionally writes per-
// experiment CSV files and -bench-json (or the MASC_BENCH_JSON
// environment variable) writes one machine-readable JSON document with
// every result from the run, for CI trend tracking.
//
// See EXPERIMENTS.md for how each output maps onto the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/masc-project/masc/internal/experiments"
	"github.com/masc-project/masc/internal/telemetry"
	"github.com/masc-project/masc/internal/version"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "run the Table 1 reliability/availability experiment")
		figure5    = flag.Bool("figure5", false, "run the Figure 5 RTT-vs-size experiment")
		throughput = flag.Bool("throughput", false, "run the throughput sweep")
		hedge      = flag.Bool("hedge", false, "run the hedged-invocation tail-latency comparison")
		persist    = flag.Bool("persist", false, "run the durable-store fsync overhead comparison")
		policyb    = flag.Bool("policybench", false, "run the policy-evaluation microbenchmark (interpreter vs compiled IR)")
		clusterb   = flag.Bool("cluster", false, "run the multi-node scaling sweep (1/2/4 sharded gateway nodes)")
		ablations  = flag.Bool("ablations", false, "run the ablation studies")
		all        = flag.Bool("all", false, "run everything")
		requests   = flag.Int("requests", 0, "requests per configuration (0 = default)")
		seed       = flag.Int64("seed", 42, "fault-injection and jitter seed")
		csvDir     = flag.String("csv", "", "also write results as CSV files into this directory")
		benchJSON  = flag.String("bench-json", "", "write all results as one JSON file (default $MASC_BENCH_JSON)")
	)
	flag.Parse()
	if !*table1 && !*figure5 && !*throughput && !*hedge && !*persist && !*policyb && !*clusterb && !*ablations && !*all {
		flag.Usage()
		os.Exit(2)
	}
	jsonPath := *benchJSON
	if jsonPath == "" {
		jsonPath = os.Getenv("MASC_BENCH_JSON")
	}
	if err := run(*table1 || *all, *figure5 || *all, *throughput || *all, *hedge || *all, *persist || *all, *policyb || *all, *clusterb || *all, *ablations || *all, *requests, *seed, *csvDir, jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "scmbench:", err)
		os.Exit(1)
	}
}

// benchReport is the machine-readable shape written by -bench-json.
// Sections are present only for the experiments that ran; durations
// serialize as nanoseconds (time.Duration's JSON form).
type benchReport struct {
	Version    string                         `json:"version"`
	Requests   int                            `json:"requests"`
	Seed       int64                          `json:"seed"`
	Table1     []experiments.Table1Row        `json:"table1,omitempty"`
	Figure5    []experiments.Figure5Point     `json:"figure5,omitempty"`
	Throughput []experiments.ThroughputPoint  `json:"throughput,omitempty"`
	Hedge      []experiments.HedgePoint       `json:"hedge,omitempty"`
	Persist    []experiments.PersistPoint     `json:"persist,omitempty"`
	Policy     []experiments.PolicyBenchPoint `json:"policy,omitempty"`
	Cluster    []experiments.ClusterPoint     `json:"cluster,omitempty"`
	Ablations  *ablationReport                `json:"ablations,omitempty"`
	// Runtime captures the bench process's allocation and GC pressure
	// across the whole run, so BENCH_*.json tracks hot-path allocation
	// regressions alongside throughput.
	Runtime *runtimeReport `json:"runtime,omitempty"`
}

// runtimeReport is the allocation-pressure section of -bench-json.
type runtimeReport struct {
	Before telemetry.RuntimeSnapshot `json:"before"`
	After  telemetry.RuntimeSnapshot `json:"after"`
	Delta  telemetry.RuntimeDelta    `json:"delta"`
}

type ablationReport struct {
	RetrySweep []experiments.RetrySweepPoint `json:"retry_sweep"`
	Selection  []experiments.SelectionPoint  `json:"selection"`
	Reparse    []experiments.ReparsePoint    `json:"reparse"`
	Listener   []experiments.ListenerPoint   `json:"listener"`
}

func run(table1, figure5, throughput, hedge, persist, policybench, clusterb, ablations bool, requests int, seed int64, csvDir, jsonPath string) error {
	writeCSV := func(name string, write func(io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}

	report := benchReport{Version: version.Version, Requests: requests, Seed: seed}
	runtimeBefore := telemetry.CaptureRuntime()

	if table1 {
		rows, err := experiments.RunTable1(experiments.Table1Config{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable1(rows))
		report.Table1 = rows
		if err := writeCSV("table1.csv", func(w io.Writer) error {
			return experiments.WriteTable1CSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if figure5 {
		points, err := experiments.RunFigure5(experiments.Figure5Config{RequestsPerPoint: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure5(points))
		report.Figure5 = points
		if err := writeCSV("figure5.csv", func(w io.Writer) error {
			return experiments.WriteFigure5CSV(w, points)
		}); err != nil {
			return err
		}
	}
	if throughput {
		points, err := experiments.RunThroughput(experiments.ThroughputConfig{RequestsPerClient: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatThroughput(points))
		report.Throughput = points
		if err := writeCSV("throughput.csv", func(w io.Writer) error {
			return experiments.WriteThroughputCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if hedge {
		points, err := experiments.RunHedgeComparison(experiments.HedgeConfig{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatHedge(points))
		report.Hedge = points
		if err := writeCSV("hedge.csv", func(w io.Writer) error {
			return experiments.WriteHedgeCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if persist {
		points, err := experiments.RunPersistComparison(experiments.PersistConfig{Instances: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatPersist(points))
		report.Persist = points
		if err := writeCSV("persist.csv", func(w io.Writer) error {
			return experiments.WritePersistCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if policybench {
		points, err := experiments.RunPolicyBench(experiments.PolicyBenchConfig{Decisions: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatPolicyBench(points))
		report.Policy = points
		if err := writeCSV("policybench.csv", func(w io.Writer) error {
			return experiments.WritePolicyBenchCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if clusterb {
		points, err := experiments.RunCluster(experiments.ClusterConfig{RequestsPerWorker: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCluster(points))
		report.Cluster = points
		if err := writeCSV("cluster.csv", func(w io.Writer) error {
			return experiments.WriteClusterCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if ablations {
		sweep, err := experiments.RunRetrySweep(experiments.Table1Config{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatRetrySweep(sweep))

		sel, err := experiments.RunSelectionComparison(experiments.Table1Config{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSelection(sel))

		rep, err := experiments.RunReparseAblation(experiments.Table1Config{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatReparse(rep))

		lis, err := experiments.RunListenerAblation(experiments.ThroughputConfig{RequestsPerClient: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatListener(lis))
		report.Ablations = &ablationReport{
			RetrySweep: sweep,
			Selection:  sel,
			Reparse:    rep,
			Listener:   lis,
		}
	}
	runtimeAfter := telemetry.CaptureRuntime()
	report.Runtime = &runtimeReport{
		Before: runtimeBefore,
		After:  runtimeAfter,
		Delta:  runtimeAfter.DeltaSince(runtimeBefore),
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
