// Command scmbench regenerates the paper's evaluation artifacts on the
// WS-I Supply Chain Management case study:
//
//	scmbench -table1      # Table 1: reliability/availability, direct vs wsBus
//	scmbench -figure5     # Figure 5: RTT vs request size, direct vs wsBus
//	scmbench -throughput  # throughput sweep (§3.2 metric)
//	scmbench -ablations   # retry budget, strategy, policy-reparse, listener
//	scmbench -all         # everything
//
// See EXPERIMENTS.md for how each output maps onto the paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/masc-project/masc/internal/experiments"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "run the Table 1 reliability/availability experiment")
		figure5    = flag.Bool("figure5", false, "run the Figure 5 RTT-vs-size experiment")
		throughput = flag.Bool("throughput", false, "run the throughput sweep")
		ablations  = flag.Bool("ablations", false, "run the ablation studies")
		all        = flag.Bool("all", false, "run everything")
		requests   = flag.Int("requests", 0, "requests per configuration (0 = default)")
		seed       = flag.Int64("seed", 42, "fault-injection and jitter seed")
		csvDir     = flag.String("csv", "", "also write results as CSV files into this directory")
	)
	flag.Parse()
	if !*table1 && !*figure5 && !*throughput && !*ablations && !*all {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*table1 || *all, *figure5 || *all, *throughput || *all, *ablations || *all, *requests, *seed, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "scmbench:", err)
		os.Exit(1)
	}
}

func run(table1, figure5, throughput, ablations bool, requests int, seed int64, csvDir string) error {
	writeCSV := func(name string, write func(io.Writer) error) error {
		if csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(csvDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return write(f)
	}

	if table1 {
		rows, err := experiments.RunTable1(experiments.Table1Config{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable1(rows))
		if err := writeCSV("table1.csv", func(w io.Writer) error {
			return experiments.WriteTable1CSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if figure5 {
		points, err := experiments.RunFigure5(experiments.Figure5Config{RequestsPerPoint: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure5(points))
		if err := writeCSV("figure5.csv", func(w io.Writer) error {
			return experiments.WriteFigure5CSV(w, points)
		}); err != nil {
			return err
		}
	}
	if throughput {
		points, err := experiments.RunThroughput(experiments.ThroughputConfig{RequestsPerClient: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatThroughput(points))
		if err := writeCSV("throughput.csv", func(w io.Writer) error {
			return experiments.WriteThroughputCSV(w, points)
		}); err != nil {
			return err
		}
	}
	if ablations {
		sweep, err := experiments.RunRetrySweep(experiments.Table1Config{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatRetrySweep(sweep))

		sel, err := experiments.RunSelectionComparison(experiments.Table1Config{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSelection(sel))

		rep, err := experiments.RunReparseAblation(experiments.Table1Config{Requests: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatReparse(rep))

		lis, err := experiments.RunListenerAblation(experiments.ThroughputConfig{RequestsPerClient: requests, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatListener(lis))
	}
	return nil
}
