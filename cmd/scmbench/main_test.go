package main

import "testing"

func TestRunSmallTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	if err := run(true, false, false, false, 200, 7, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallFigure5AndThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	if err := run(false, true, true, false, 40, 7, ""); err != nil {
		t.Fatal(err)
	}
}
