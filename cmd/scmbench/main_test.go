package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSmallTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	if err := run(true, false, false, false, false, false, false, false, 200, 7, t.TempDir(), ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallFigure5AndThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	if err := run(false, true, true, false, false, false, false, false, 40, 7, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run(true, false, true, false, false, false, false, false, 40, 7, "", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if report.Seed != 7 || report.Requests != 40 {
		t.Errorf("config echoed wrong: requests=%d seed=%d", report.Requests, report.Seed)
	}
	if len(report.Table1) == 0 {
		t.Error("table1 section empty")
	}
	if len(report.Throughput) == 0 {
		t.Error("throughput section empty")
	}
	if report.Figure5 != nil || report.Hedge != nil || report.Ablations != nil {
		t.Error("sections for experiments that did not run should be omitted")
	}
	if report.Version != "dev" { // unstamped test build
		t.Errorf("version = %q", report.Version)
	}
	for _, row := range report.Table1 {
		if row.Requests <= 0 {
			t.Errorf("table1 row %q has no requests", row.Configuration)
		}
		mediated := strings.HasPrefix(row.Configuration, "wsBus")
		if mediated != (row.Adaptation != nil) {
			t.Errorf("table1 row %q adaptation = %+v", row.Configuration, row.Adaptation)
		}
		if mediated && row.Adaptation.Attempts < row.Adaptation.Invocations {
			t.Errorf("adaptation snapshot inconsistent: %+v", row.Adaptation)
		}
	}
}
