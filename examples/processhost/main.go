// Processhost exposes the Fig. 2 Trading Process itself as a SOAP
// service over real HTTP: an investor's placeOrder request starts a
// process instance, the composition runs (verify → analyze → decide →
// compliance → trade with parallel settlement), and the trade
// confirmation comes back as the SOAP response — the process IS the
// service.
//
//	go run ./examples/processhost
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"github.com/masc-project/masc/internal/core"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/stocktrade"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
	"github.com/masc-project/masc/internal/xmltree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Backend services on the in-process network, middleware on top.
	network := transport.NewNetwork()
	if _, err := stocktrade.Deploy(network, nil, 1); err != nil {
		return err
	}
	stack := core.NewStack(network)
	defer stack.Close()
	def, err := workflow.ParseDefinitionString(stocktrade.BaseProcessXML)
	if err != nil {
		return err
	}
	stack.Engine.Deploy(def)

	// The composition, hosted as a SOAP service over HTTP.
	host := &workflow.ProcessHost{
		Engine:     stack.Engine,
		Definition: "TradingProcess",
		InputVar:   "order",
		OutputVar:  "trade",
	}
	server := httptest.NewServer(&transport.HTTPHandler{Service: host})
	defer server.Close()
	fmt.Println("Trading Process hosted at", server.URL)

	// An investor places two orders over plain HTTP SOAP.
	investor := &transport.HTTPInvoker{}
	for _, amount := range []float64{2500, 90000} {
		payload, err := xmltree.ParseString(
			stocktrade.NewOrderPayload("domestic", "Australia", "personal", amount, "buy"))
		if err != nil {
			return err
		}
		req := soap.NewRequest(payload)
		soap.Addressing{Action: "placeOrder"}.Apply(req)

		resp, err := investor.Invoke(context.Background(), server.URL, req)
		if err != nil {
			return err
		}
		if resp.IsFault() {
			return resp.Fault
		}
		fmt.Printf("order %.0f AUD -> %s (%s), served by instance %s\n",
			amount,
			resp.Payload.ChildText("", "tradeID"),
			resp.Payload.ChildText("", "status"),
			soap.ProcessInstanceID(resp))
	}
	return nil
}
