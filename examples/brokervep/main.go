// Brokervep demonstrates the VEP's selection strategies (§3.1(4)): a
// "Web search" virtual service grouping three engines with different
// latencies, driven in round-robin, best-response-time, and
// broadcast-first-response modes, plus a message-adaptation pipeline
// that normalizes the engines' differing response schemas.
//
//	go run ./examples/brokervep
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/xmltree"
)

func engine(name string, delay time.Duration, resultElement string) transport.Handler {
	return transport.HandlerFunc(func(_ context.Context, req *soap.Envelope) (*soap.Envelope, error) {
		time.Sleep(delay)
		resp := xmltree.New("urn:search", "searchResponse")
		resp.Append(xmltree.NewText("urn:search", resultElement, name+" result for "+req.Payload.ChildText("", "query")))
		resp.Append(xmltree.NewText("urn:search", "engine", name))
		return soap.NewRequest(resp), nil
	})
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := transport.NewNetwork()
	// The engines disagree on their result element name — the Message
	// Adaptation Service will normalize them (§3.1(6)).
	network.Register("inproc://google", engine("google", 2*time.Millisecond, "hit"))
	network.Register("inproc://yahoo", engine("yahoo", 6*time.Millisecond, "match"))
	network.Register("inproc://msn", engine("msn", 15*time.Millisecond, "item"))
	services := []string{"inproc://google", "inproc://yahoo", "inproc://msn"}

	search := func(gateway transport.Invoker, target string) (*soap.Envelope, time.Duration, error) {
		q := xmltree.New("urn:search", "search")
		q.Append(xmltree.NewText("urn:search", "query", "adaptive middleware"))
		env := soap.NewRequest(q)
		soap.Addressing{To: target, Action: "search"}.Apply(env)
		start := time.Now()
		resp, err := gateway.Invoke(context.Background(), target, env)
		return resp, time.Since(start), err
	}

	fmt.Println("round-robin selection rotates engines:")
	rr := bus.New(network)
	if _, err := rr.CreateVEP(bus.VEPConfig{
		Name: "Search", Services: services, Selection: policy.SelectRoundRobin,
	}); err != nil {
		return err
	}
	vep, err := rr.VEP("Search")
	if err != nil {
		return err
	}
	// Normalize every engine's schema to <result>.
	vep.Pipeline().Append(&bus.AdaptationModule{
		Name: "normalize-results",
		ResponseTransforms: []bus.Transform{
			bus.RenameElements(map[string]string{"hit": "result", "match": "result", "item": "result"}),
		},
	})
	for i := 0; i < 3; i++ {
		resp, rtt, err := search(rr, "vep:Search")
		if err != nil {
			return err
		}
		fmt.Printf("  engine=%s rtt=%v result=%q\n",
			resp.Payload.ChildText("", "engine"), rtt.Round(time.Millisecond),
			resp.Payload.ChildText("", "result"))
	}

	fmt.Println("\nbest-response-time selection converges on the fastest engine:")
	best := bus.New(network)
	if _, err := best.CreateVEP(bus.VEPConfig{
		Name: "Search", Services: services, Selection: policy.SelectBestResponseTime,
	}); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		resp, rtt, err := search(best, "vep:Search")
		if err != nil {
			return err
		}
		fmt.Printf("  pick %d: engine=%s rtt=%v\n", i+1,
			resp.Payload.ChildText("", "engine"), rtt.Round(time.Millisecond))
	}

	fmt.Println("\nbroadcast: all engines invoked concurrently, first response wins")
	fmt.Println("(configured as a corrective policy on a VEP whose primary always fails):")
	network.Register("inproc://deadengine", transport.HandlerFunc(
		func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
			return nil, &transport.UnavailableError{Endpoint: "inproc://deadengine", Reason: "retired"}
		}))
	repo := policy.NewRepository()
	if _, err := repo.LoadXML(`
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="broadcast">
  <AdaptationPolicy name="race-all" subject="vep:Search" priority="5">
    <OnEvent type="fault.detected"/>
    <Actions><ConcurrentInvoke/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`); err != nil {
		return err
	}
	bcast := bus.New(network, bus.WithPolicyRepository(repo))
	if _, err := bcast.CreateVEP(bus.VEPConfig{
		Name:      "Search",
		Services:  append([]string{"inproc://deadengine"}, services...),
		Selection: policy.SelectFirst,
	}); err != nil {
		return err
	}
	resp, rtt, err := search(bcast, "vep:Search")
	if err != nil {
		return err
	}
	fmt.Printf("  winner=%s rtt=%v (fastest healthy engine)\n",
		resp.Payload.ChildText("", "engine"), rtt.Round(time.Millisecond))
	return nil
}
