// Supplychain runs the paper's §3.2 reliability scenario interactively:
// the WS-I SCM application with random retailer outages, invoked first
// directly and then through a wsBus VEP with the retry+failover and
// skip-logging policies. It prints the before/after reliability the
// way Table 1 does.
//
//	go run ./examples/supplychain
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/faultinject"
	"github.com/masc-project/masc/internal/loadgen"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/scm"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/xmltree"
)

const recoveryPolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="scm-recovery">
  <AdaptationPolicy name="retry-then-failover" subject="vep:Retailer" priority="10">
    <OnEvent type="fault.detected"/>
    <Actions>
      <Retry maxAttempts="3" delay="500us"/>
      <Substitute selection="bestResponseTime"/>
    </Actions>
  </AdaptationPolicy>
  <AdaptationPolicy name="skip-logging" subject="vep:Logging" priority="5">
    <OnEvent type="fault.detected"/>
    <Actions><Skip/></Actions>
  </AdaptationPolicy>
</PolicyDocument>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four retailers; A and D crash-loop at random times.
	network := transport.NewNetwork()
	origin := time.Now()
	deployment, err := scm.Deploy(network, nil, scm.DeployConfig{
		Retailers: 4,
		RetailerInjectors: map[int]faultinject.Injector{
			0: faultinject.NewRandomOutages(origin, 20*time.Millisecond, 3*time.Millisecond, 1),
			3: faultinject.NewRandomOutages(origin, 25*time.Millisecond, 3*time.Millisecond, 2),
		},
	})
	if err != nil {
		return err
	}

	order := func(invoker transport.Invoker, target string) loadgen.Op {
		return func(ctx context.Context, client, seq int) error {
			env := soap.NewRequest(scm.NewSubmitOrderRequest(
				fmt.Sprintf("cust-%d-%d", client, seq),
				[]scm.OrderItem{{SKU: "605005", Qty: 1}}, 0))
			soap.Addressing{To: target, Action: "submitOrder"}.Apply(env)
			resp, err := invoker.Invoke(ctx, target, env)
			if err != nil {
				return err
			}
			if resp.IsFault() {
				return resp.Fault
			}
			return nil
		}
	}
	cfg := loadgen.Config{Clients: 4, RequestsPerClient: 100}

	fmt.Println("submitOrder against retailer A directly (A has random outages):")
	direct := loadgen.Run(context.Background(), cfg, order(network, scm.RetailerAddr(0)))
	report(direct)

	repo := policy.NewRepository()
	if _, err := repo.LoadXML(recoveryPolicies); err != nil {
		return err
	}
	gateway := bus.New(network, bus.WithPolicyRepository(repo))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:      "Retailer",
		Services:  deployment.RetailerAddrs,
		Contract:  scm.RetailerContract(),
		Selection: policy.SelectRoundRobin,
	}); err != nil {
		return err
	}

	fmt.Println("\nsubmitOrder through the wsBus VEP (same faults, recovery policies active):")
	mediated := loadgen.Run(context.Background(), cfg, order(gateway, "vep:Retailer"))
	report(mediated)

	fmt.Printf("\nlogging facility captured %d events\n", len(deployment.Logging.Events()))

	// One-way messages go through the Invocation Retry Handler: the
	// retry queue redelivers failed logEvent notifications and
	// dead-letters them after the budget is exhausted (§3.1).
	fmt.Println("\none-way logEvent notifications via the retry queue:")
	queue := gateway.NewRetryQueueFor(policy.RetryAction{MaxAttempts: 2, Delay: time.Millisecond}, time.Millisecond)
	defer queue.Stop()

	deliverable := scm.LoggingAddr
	undeliverable := "inproc://scm/logging-decommissioned"
	notify := func(target, text string) <-chan error {
		p := soap.NewRequest(logEventPayload(text))
		soap.Addressing{To: target, Action: "logEvent"}.Apply(p)
		return queue.Enqueue(target, p)
	}
	okDone := notify(deliverable, "nightly reconciliation complete")
	badDone := notify(undeliverable, "this service no longer exists")
	if err := <-okDone; err == nil {
		fmt.Println("  delivered: notification to the logging facility")
	}
	if err := <-badDone; err != nil {
		fmt.Printf("  dead-lettered after retries: %d message(s) in DLQ (last error: %v)\n",
			queue.DLQ().Len(), queue.DLQ().Letters()[0].LastErr)
	}
	return nil
}

func logEventPayload(text string) *xmltree.Element {
	p := xmltree.New("urn:wsi:scm", "logEvent")
	p.Append(xmltree.NewText("urn:wsi:scm", "eventText", text))
	return p
}

func report(s loadgen.Summary) {
	_, _, avail := loadgen.Availability(s.Outcomes)
	fmt.Printf("  %d requests, %d failures (%.1f per 1000), availability %.3f, mean RTT %v\n",
		s.Requests, s.Failures, s.FailuresPer1000, avail, s.Mean.Round(10*time.Microsecond))
}
