// Quickstart: put a flaky service behind a wsBus Virtual End Point and
// let a declarative WS-Policy4MASC document make it reliable.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/policy"
	"github.com/masc-project/masc/internal/soap"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/xmltree"
)

const recoveryPolicies = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="quickstart">
  <AdaptationPolicy name="retry-then-failover" subject="vep:Greeter" priority="10">
    <OnEvent type="fault.detected"/>
    <Actions>
      <Retry maxAttempts="2" delay="10ms"/>
      <Substitute selection="first"/>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A network with one unreliable service and one stable backup.
	network := transport.NewNetwork()
	var calls atomic.Int64
	network.Register("inproc://flaky", transport.HandlerFunc(
		func(_ context.Context, req *soap.Envelope) (*soap.Envelope, error) {
			if calls.Add(1)%2 == 1 { // every odd call fails
				return nil, &transport.UnavailableError{Endpoint: "inproc://flaky", Reason: "crashed"}
			}
			return reply("hello from flaky"), nil
		}))
	network.Register("inproc://stable", transport.HandlerFunc(
		func(context.Context, *soap.Envelope) (*soap.Envelope, error) {
			return reply("hello from stable"), nil
		}))

	// A bus with one VEP grouping both services, plus the policies.
	repo := policy.NewRepository()
	if _, err := repo.LoadXML(recoveryPolicies); err != nil {
		return err
	}
	gateway := bus.New(network, bus.WithPolicyRepository(repo))
	if _, err := gateway.CreateVEP(bus.VEPConfig{
		Name:     "Greeter",
		Services: []string{"inproc://flaky", "inproc://stable"},
	}); err != nil {
		return err
	}

	// Every request succeeds even though the primary fails half the
	// time: the policy retries it and fails over to the backup.
	for i := 0; i < 6; i++ {
		req := soap.NewRequest(xmltree.New("urn:demo", "greet"))
		resp, err := gateway.Invoke(context.Background(), "vep:Greeter", req)
		if err != nil {
			return fmt.Errorf("request %d failed despite recovery policy: %w", i, err)
		}
		fmt.Printf("request %d -> %s\n", i, resp.Payload.Text)
	}
	fmt.Printf("flaky service was attempted %d times in total\n", calls.Load())
	return nil
}

func reply(text string) *soap.Envelope {
	return soap.NewRequest(xmltree.NewText("urn:demo", "greetResponse", text))
}
