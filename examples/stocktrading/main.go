// Stocktrading demonstrates the paper's §2 contribution: policy-driven
// customization of a composition *instance* — statically (at instance
// creation) and dynamically (on a running, suspended instance) —
// without editing the process definition or any service.
//
//	go run ./examples/stocktrading
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"github.com/masc-project/masc/internal/bus"
	"github.com/masc-project/masc/internal/core"
	"github.com/masc-project/masc/internal/event"
	"github.com/masc-project/masc/internal/stocktrade"
	"github.com/masc-project/masc/internal/transport"
	"github.com/masc-project/masc/internal/workflow"
	"github.com/masc-project/masc/internal/xmltree"
)

// Static customization policy: international orders gain a
// CurrencyConversion step, selected dynamically from the directory.
const staticPolicy = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="static-customization">
  <AdaptationPolicy name="add-currency-conversion" subject="TradingProcess" kind="customization" layer="process" priority="8">
    <OnEvent type="process.started"/>
    <Condition>//order/placeOrder/Market = 'international'</Condition>
    <StateAfter>international</StateAfter>
    <Actions>
      <AddActivity anchor="Analyze" position="after" variationRef="currency-conversion">
        <Bind from="order" to="ccInput"/>
      </AddActivity>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

// Dynamic customization policy: when monitoring sees the fund manager
// approve a large amount mid-run, a CreditRating step is inserted into
// the *running* instance before the trade executes.
const dynamicPolicy = `
<PolicyDocument xmlns="urn:masc:ws-policy4masc" name="dynamic-customization">
  <AdaptationPolicy name="credit-check-large-approvals" subject="TradingProcess" kind="customization" layer="process" priority="9">
    <OnEvent type="message.intercepted"/>
    <Condition>number(//verifyOrderResponse/approvedAmount) > 50000</Condition>
    <StateBefore></StateBefore>
    <StateAfter>credit-checked</StateAfter>
    <Actions>
      <AddActivity anchor="ExecuteTrade" position="before">
        <Activity><invoke name="CreditRating" endpoint="inproc://trade/credit-1" operation="rate" input="order"/></Activity>
      </AddActivity>
    </Actions>
  </AdaptationPolicy>
</PolicyDocument>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := transport.NewNetwork()
	if _, err := stocktrade.Deploy(network, nil, 1); err != nil {
		return err
	}
	stack := core.NewStack(network)
	defer stack.Close()

	// Variation processes live in their own documents and are only
	// referenced from policies (§2).
	err := stack.Adaptation.RegisterVariationXML("currency-conversion",
		`<invoke name="CurrencyConversion" endpoint="inproc://trade/currency-1" operation="convert" input="ccInput"/>`)
	if err != nil {
		return err
	}
	for _, doc := range []string{staticPolicy, dynamicPolicy} {
		if err := stack.LoadPolicies(doc); err != nil {
			return err
		}
	}

	def, err := workflow.ParseDefinitionString(stocktrade.BaseProcessXML)
	if err != nil {
		return err
	}
	stack.Engine.Deploy(def)

	// Route the fund-manager through a VEP so the monitoring service
	// intercepts its messages (the dynamic-customization sensor).
	if _, err := stack.Bus.CreateVEP(vepFor("FundManager", stocktrade.FundManagerAddr)); err != nil {
		return err
	}
	if err := stack.Bus.Proxy(stocktrade.FundManagerAddr, "FundManager"); err != nil {
		return err
	}

	trace := traceActivities(stack.Events)

	fmt.Println("=== static customization: international order gains CurrencyConversion ===")
	if err := trade(stack, trace, "international", 2_000); err != nil {
		return err
	}
	fmt.Println("\n=== no customization: domestic order runs the base process ===")
	if err := trade(stack, trace, "domestic", 2_000); err != nil {
		return err
	}
	fmt.Println("\n=== dynamic customization: large approval inserts CreditRating mid-run ===")
	if err := trade(stack, trace, "domestic", 90_000); err != nil {
		return err
	}
	return nil
}

func trade(stack *core.Stack, trace map[string][]string, market string, amount float64) error {
	payload, err := xmltree.ParseString(stocktrade.NewOrderPayload(market, "Japan", "personal", amount, "buy"))
	if err != nil {
		return err
	}
	inst, err := stack.Engine.Start("TradingProcess", map[string]*xmltree.Element{"order": payload})
	if err != nil {
		return err
	}
	state, err := inst.Wait(10 * time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("instance %s finished %s; adaptation state %q\n", inst.ID(), state, inst.AdaptationState())
	fmt.Printf("  invokes: %s\n", strings.Join(trace[inst.ID()], " → "))
	return nil
}

func traceActivities(events *event.Bus) map[string][]string {
	trace := make(map[string][]string)
	events.Subscribe(event.TypeActivityCompleted, func(ev event.Event) {
		if ev.Detail == "invoke" {
			trace[ev.ProcessInstanceID] = append(trace[ev.ProcessInstanceID], ev.Operation)
		}
	})
	return trace
}

func vepFor(name, addr string) busVEPConfig {
	return busVEPConfig{Name: name, Services: []string{addr}}
}

// busVEPConfig aliases the bus configuration type for readability.
type busVEPConfig = bus.VEPConfig
